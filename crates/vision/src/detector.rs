use crate::scene::{Frame, ObjectClass, SceneObject};
use crate::Domain;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One detection attempt on one annotated object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The object's ground-truth class.
    pub class: ObjectClass,
    /// The domain the frame came from.
    pub domain: Domain,
    /// The detector's confidence score in `[0, 1]`.
    pub confidence: f32,
    /// Whether the predicted label/box matched the ground truth.
    pub correct: bool,
}

/// A stochastic stand-in for an open-set object detector (the paper uses
/// Grounded SAM = Grounding DINO + SAM).
///
/// The detector's confidence is a noisy logistic function of the object's
/// latent detectability, and correctness is Bernoulli in the *same*
/// detectability — so confidence is (approximately) calibrated, and the
/// calibration is a property of the detector, independent of the domain.
/// The optional `domain_bias` breaks that independence to model a
/// detector that overfits one domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// Logistic slope from detectability to correctness probability.
    pub sharpness: f32,
    /// Standard deviation of confidence noise.
    pub confidence_noise: f32,
    /// Accuracy penalty applied in the `Real` domain only (0 = consistent
    /// detector).
    pub domain_bias: f32,
}

impl Detector {
    /// A consistent, well-calibrated detector — the behaviour the paper
    /// measures for Grounded SAM.
    pub fn grounded_sam_like() -> Detector {
        Detector {
            sharpness: 6.0,
            confidence_noise: 0.06,
            domain_bias: 0.0,
        }
    }

    /// A detector that performs worse on real imagery at the same
    /// confidence — the failure case that would invalidate the paper's
    /// sim-to-real transfer argument.
    pub fn domain_biased(bias: f32) -> Detector {
        Detector {
            domain_bias: bias,
            ..Detector::grounded_sam_like()
        }
    }

    /// Domain-independent correctness probability (what the detector's
    /// confidence head has learned).
    fn p_base(&self, obj: &SceneObject) -> f32 {
        let x = obj.detectability();
        let logit = self.sharpness * (x - 0.35);
        (1.0 / (1.0 + (-logit).exp())).clamp(0.01, 0.995)
    }

    /// Actual probability the detection is correct, including any domain
    /// bias.
    fn p_correct(&self, obj: &SceneObject, domain: Domain) -> f32 {
        let bias = if domain == Domain::Real {
            self.domain_bias
        } else {
            0.0
        };
        (self.p_base(obj) - bias).clamp(0.01, 0.995)
    }

    /// Runs the detector on one object.
    pub fn detect(&self, obj: &SceneObject, domain: Domain, rng: &mut impl Rng) -> Detection {
        let p = self.p_correct(obj, domain);
        let correct = rng.gen::<f32>() < p;
        // Confidence tracks the detector's *learned* (domain-independent)
        // correctness probability with noise. A domain-biased detector is
        // therefore overconfident on real imagery — the miscalibration
        // the paper's consistency check would catch.
        let noise = (rng.gen::<f32>() - 0.5) * 2.0 * self.confidence_noise;
        let confidence = (self.p_base(obj) + noise).clamp(0.0, 1.0);
        Detection {
            class: obj.class,
            domain,
            confidence,
            correct,
        }
    }

    /// Runs the detector over a whole dataset, one detection per object.
    pub fn detect_all(&self, frames: &[Frame], rng: &mut impl Rng) -> Vec<Detection> {
        frames
            .iter()
            .flat_map(|f| {
                f.objects
                    .iter()
                    .map(|o| self.detect(o, f.domain, rng))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::generate_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn confidence_in_unit_interval() {
        let det = Detector::grounded_sam_like();
        let mut rng = StdRng::seed_from_u64(0);
        let frames = generate_dataset(Domain::Real, 50, &mut rng);
        for d in det.detect_all(&frames, &mut rng) {
            assert!((0.0..=1.0).contains(&d.confidence));
        }
    }

    #[test]
    fn easy_objects_are_detected_more_reliably() {
        let det = Detector::grounded_sam_like();
        let mut rng = StdRng::seed_from_u64(1);
        let easy = SceneObject {
            class: ObjectClass::Car,
            size: 0.95,
            occlusion: 0.05,
            contrast: 0.95,
        };
        let hard = SceneObject {
            class: ObjectClass::Car,
            size: 0.08,
            occlusion: 0.7,
            contrast: 0.25,
        };
        let rate = |obj: &SceneObject, rng: &mut StdRng| {
            (0..500)
                .filter(|_| det.detect(obj, Domain::Sim, rng).correct)
                .count() as f32
                / 500.0
        };
        assert!(rate(&easy, &mut rng) > rate(&hard, &mut rng) + 0.3);
    }

    #[test]
    fn domain_bias_hurts_real_only() {
        let det = Detector::domain_biased(0.3);
        let obj = SceneObject {
            class: ObjectClass::Pedestrian,
            size: 0.6,
            occlusion: 0.2,
            contrast: 0.7,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let rate = |domain: Domain, rng: &mut StdRng| {
            (0..800)
                .filter(|_| det.detect(&obj, domain, rng).correct)
                .count() as f32
                / 800.0
        };
        let sim = rate(Domain::Sim, &mut rng);
        let real = rate(Domain::Real, &mut rng);
        assert!(sim > real + 0.15, "sim {sim} vs real {real}");
    }

    #[test]
    fn detect_all_covers_every_object() {
        let det = Detector::grounded_sam_like();
        let mut rng = StdRng::seed_from_u64(3);
        let frames = generate_dataset(Domain::Sim, 20, &mut rng);
        let total: usize = frames.iter().map(|f| f.objects.len()).sum();
        assert_eq!(det.detect_all(&frames, &mut rng).len(), total);
    }
}
