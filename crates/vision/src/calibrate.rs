use crate::detector::Detection;
use serde::{Deserialize, Serialize};

/// One confidence bin of a calibration curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalBin {
    /// Bin center in `[0, 1]`.
    pub confidence: f32,
    /// Empirical accuracy of detections falling in the bin (`NaN`-free:
    /// empty bins report 0 accuracy with 0 count).
    pub accuracy: f32,
    /// Number of detections in the bin.
    pub count: usize,
}

/// A confidence→accuracy mapping, the artifact of the paper's Figure 12
/// (following the confidence-calibration method of Yang et al., 2023).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    /// Equal-width bins over `[0, 1]`.
    pub bins: Vec<CalBin>,
}

impl CalibrationCurve {
    /// Expected calibration error: the count-weighted mean absolute gap
    /// between bin confidence and bin accuracy.
    pub fn ece(&self) -> f32 {
        let total: usize = self.bins.iter().map(|b| b.count).sum();
        if total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|b| (b.count as f32 / total as f32) * (b.confidence - b.accuracy).abs())
            .sum()
    }

    /// Total number of detections.
    pub fn count(&self) -> usize {
        self.bins.iter().map(|b| b.count).sum()
    }
}

/// Bins detections by confidence into `num_bins` equal-width bins and
/// computes per-bin accuracy.
///
/// # Panics
///
/// Panics if `num_bins == 0`.
///
/// # Example
///
/// ```
/// use vision::{calibrate, Detection, Domain, ObjectClass};
///
/// let detections = vec![
///     Detection { class: ObjectClass::Car, domain: Domain::Sim, confidence: 0.9, correct: true },
///     Detection { class: ObjectClass::Car, domain: Domain::Sim, confidence: 0.1, correct: false },
/// ];
/// let curve = calibrate(&detections, 10);
/// assert_eq!(curve.count(), 2);
/// assert_eq!(curve.bins.len(), 10);
/// ```
pub fn calibrate(detections: &[Detection], num_bins: usize) -> CalibrationCurve {
    assert!(num_bins > 0, "at least one bin required");
    let mut counts = vec![0usize; num_bins];
    let mut hits = vec![0usize; num_bins];
    for d in detections {
        let mut bin = (d.confidence * num_bins as f32) as usize;
        if bin >= num_bins {
            bin = num_bins - 1;
        }
        counts[bin] += 1;
        if d.correct {
            hits[bin] += 1;
        }
    }
    let bins = (0..num_bins)
        .map(|i| CalBin {
            confidence: (i as f32 + 0.5) / num_bins as f32,
            accuracy: if counts[i] == 0 {
                0.0
            } else {
                hits[i] as f32 / counts[i] as f32
            },
            count: counts[i],
        })
        .collect();
    CalibrationCurve { bins }
}

/// Count-weighted mean absolute accuracy gap between two calibration
/// curves over bins populated in **both** — the consistency measure for
/// the paper's "approximately equal under all confidence levels" claim.
///
/// Returns `0.0` when no bin is shared.
///
/// # Panics
///
/// Panics if the curves have different bin counts.
pub fn consistency_gap(a: &CalibrationCurve, b: &CalibrationCurve) -> f32 {
    assert_eq!(a.bins.len(), b.bins.len(), "bin counts must match");
    let mut weighted = 0.0f32;
    let mut weight = 0.0f32;
    for (ba, bb) in a.bins.iter().zip(&b.bins) {
        if ba.count > 0 && bb.count > 0 {
            let w = (ba.count.min(bb.count)) as f32;
            weighted += w * (ba.accuracy - bb.accuracy).abs();
            weight += w;
        }
    }
    if weight == 0.0 {
        0.0
    } else {
        weighted / weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, ObjectClass};
    use proptest::prelude::*;

    fn det(conf: f32, correct: bool) -> Detection {
        Detection {
            class: ObjectClass::Car,
            domain: Domain::Sim,
            confidence: conf,
            correct,
        }
    }

    #[test]
    fn binning_assigns_to_correct_bins() {
        let d = vec![det(0.05, true), det(0.95, true), det(1.0, false)];
        let curve = calibrate(&d, 10);
        assert_eq!(curve.bins[0].count, 1);
        assert_eq!(curve.bins[9].count, 2);
        assert!((curve.bins[9].accuracy - 0.5).abs() < 1e-6);
        assert_eq!(curve.count(), 3);
    }

    #[test]
    fn perfectly_calibrated_curve_has_zero_ece() {
        // Confidence 0.75 bin with 75% accuracy.
        let mut d = Vec::new();
        for i in 0..100 {
            d.push(det(0.75, i % 4 != 0));
        }
        let curve = calibrate(&d, 2);
        assert!(curve.ece() < 0.01, "ece = {}", curve.ece());
    }

    #[test]
    fn consistency_gap_zero_for_identical() {
        let d: Vec<Detection> = (0..50).map(|i| det(i as f32 / 50.0, i % 2 == 0)).collect();
        let curve = calibrate(&d, 10);
        assert_eq!(consistency_gap(&curve, &curve), 0.0);
    }

    #[test]
    fn consistency_gap_detects_divergence() {
        let good: Vec<Detection> = (0..200).map(|i| det(0.8, i % 5 != 0)).collect(); // 80%
        let bad: Vec<Detection> = (0..200).map(|i| det(0.8, i % 2 == 0)).collect(); // 50%
        let gap = consistency_gap(&calibrate(&good, 10), &calibrate(&bad, 10));
        assert!((gap - 0.3).abs() < 0.02, "gap = {gap}");
    }

    #[test]
    #[should_panic(expected = "bin counts")]
    fn mismatched_bins_panic() {
        let d = vec![det(0.5, true)];
        let _ = consistency_gap(&calibrate(&d, 5), &calibrate(&d, 10));
    }

    proptest! {
        /// Bin counts always sum to the number of detections, and
        /// accuracies stay in [0, 1].
        #[test]
        fn bins_partition_detections(
            confs in proptest::collection::vec(0.0f32..=1.0, 0..64),
        ) {
            let d: Vec<Detection> = confs
                .iter()
                .enumerate()
                .map(|(i, &c)| det(c, i % 3 == 0))
                .collect();
            let curve = calibrate(&d, 8);
            prop_assert_eq!(curve.count(), d.len());
            for b in &curve.bins {
                prop_assert!((0.0..=1.0).contains(&b.accuracy));
            }
        }
    }
}
