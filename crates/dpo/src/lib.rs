//! # dpo — Direct Preference Optimization
//!
//! Implementation of the DPO objective (Rafailov et al., 2023) used by
//! *"Fine-Tuning Language Models Using Formal Methods Feedback"*
//! (MLSys 2024) to fine-tune the language model from automatically ranked
//! response pairs.
//!
//! Given a dataset of triples `(x, y_w, y_l)` — a prompt, a preferred
//! response and a dispreferred response — DPO minimizes
//!
//! ```text
//! L(θ) = −E log σ( β·[ (log πθ(y_w|x) − log πref(y_w|x))
//!                    − (log πθ(y_l|x) − log πref(y_l|x)) ] )
//! ```
//!
//! against a frozen reference policy `πref`, with no explicit reward model
//! and no reinforcement learning.
//!
//! The crate provides:
//!
//! * [`PreferencePair`] / [`PreferenceDataset`] — datasets built from
//!   scored responses ([`PreferenceDataset::add_scored`] forms all
//!   strictly-ordered pairs, the paper's `N · C(m, 2)` bound).
//! * [`dpo_loss_grad`] — exact loss, metrics and parameter gradient for
//!   one pair.
//! * [`DpoTrainer`] — a minibatch trainer that records the paper's three
//!   Figure-8 metrics per epoch: **loss**, **accuracy**
//!   (`1[P(y_w|x,θ) > P(y_l|x,θ)]`) and **marginal preference**
//!   (the bracketed quantity above), with periodic checkpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod loss;
mod trainer;

pub use data::{PreferenceDataset, PreferencePair};
pub use loss::{dpo_loss_grad, dpo_loss_grad_with_ref, eval_pair, ipo_loss_grad, PairEval};
pub use trainer::{DpoTrainer, EpochStats, TrainOptions};
