use serde::{Deserialize, Serialize};
use tinylm::Token;

/// One preference triple `(x, y_w, y_l)`: the prompt is a task id (the
/// conditional language model's prompt encoding), `winner` is the
/// preferred response and `loser` the dispreferred one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferencePair {
    /// Task (prompt) id.
    pub task: usize,
    /// Preferred response tokens `y_w`.
    pub winner: Vec<Token>,
    /// Dispreferred response tokens `y_l`.
    pub loser: Vec<Token>,
}

/// A DPO training dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferenceDataset {
    /// The pairs, in insertion order.
    pub pairs: Vec<PreferencePair>,
}

impl PreferenceDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Adds one pair.
    pub fn push(&mut self, pair: PreferencePair) {
        self.pairs.push(pair);
    }

    /// Builds all strictly-ordered pairs from scored responses to one
    /// task: every two responses with *different* scores yield one pair
    /// with the higher-scored response as winner. Ties produce no pair —
    /// the paper ranks by the number of satisfied specifications, and
    /// equal counts carry no preference signal.
    ///
    /// With `m` distinctly-scored responses this yields up to `C(m, 2)`
    /// pairs per task, matching the paper's `N · C₂(m)` data-point bound.
    ///
    /// # Example
    ///
    /// ```
    /// use dpo::PreferenceDataset;
    ///
    /// let mut ds = PreferenceDataset::new();
    /// ds.add_scored(0, &[(vec![5, 6], 13), (vec![7], 9), (vec![8], 13)]);
    /// // (13,9), (13,9) → two pairs; the 13-13 tie yields none.
    /// assert_eq!(ds.len(), 2);
    /// assert!(ds.pairs.iter().all(|p| p.winner != p.loser));
    /// ```
    pub fn add_scored(&mut self, task: usize, scored: &[(Vec<Token>, usize)]) {
        for i in 0..scored.len() {
            for j in (i + 1)..scored.len() {
                let (ref yi, si) = scored[i];
                let (ref yj, sj) = scored[j];
                if si == sj {
                    continue;
                }
                let (winner, loser) = if si > sj { (yi, yj) } else { (yj, yi) };
                self.pairs.push(PreferencePair {
                    task,
                    winner: winner.clone(),
                    loser: loser.clone(),
                });
            }
        }
    }

    /// Tasks present in the dataset, deduplicated and sorted.
    pub fn tasks(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.pairs.iter().map(|p| p.task).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl FromIterator<PreferencePair> for PreferenceDataset {
    fn from_iter<I: IntoIterator<Item = PreferencePair>>(iter: I) -> Self {
        PreferenceDataset {
            pairs: iter.into_iter().collect(),
        }
    }
}

impl Extend<PreferencePair> for PreferenceDataset {
    fn extend<I: IntoIterator<Item = PreferencePair>>(&mut self, iter: I) {
        self.pairs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_scored_orders_by_score() {
        let mut ds = PreferenceDataset::new();
        ds.add_scored(3, &[(vec![1], 2), (vec![2], 5)]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.pairs[0].winner, vec![2]);
        assert_eq!(ds.pairs[0].loser, vec![1]);
        assert_eq!(ds.pairs[0].task, 3);
    }

    #[test]
    fn ties_yield_no_pairs() {
        let mut ds = PreferenceDataset::new();
        ds.add_scored(0, &[(vec![1], 4), (vec![2], 4), (vec![3], 4)]);
        assert!(ds.is_empty());
    }

    #[test]
    fn pair_count_is_c2_when_all_distinct() {
        let mut ds = PreferenceDataset::new();
        let scored: Vec<(Vec<Token>, usize)> =
            (0..5).map(|i| (vec![i as Token], i as usize)).collect();
        ds.add_scored(0, &scored);
        assert_eq!(ds.len(), 10); // C(5,2)
    }

    #[test]
    fn tasks_deduplicated() {
        let mut ds = PreferenceDataset::new();
        ds.add_scored(2, &[(vec![1], 0), (vec![2], 1)]);
        ds.add_scored(0, &[(vec![1], 0), (vec![2], 1)]);
        ds.add_scored(2, &[(vec![3], 0), (vec![4], 1)]);
        assert_eq!(ds.tasks(), vec![0, 2]);
    }

    #[test]
    fn collect_and_extend() {
        let pair = PreferencePair {
            task: 0,
            winner: vec![1],
            loser: vec![2],
        };
        let mut ds: PreferenceDataset = std::iter::repeat_n(pair.clone(), 3).collect();
        ds.extend([pair]);
        assert_eq!(ds.len(), 4);
    }
}
