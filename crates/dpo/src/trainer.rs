use crate::loss::dpo_loss_grad;
use crate::{PairEval, PreferenceDataset};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tinylm::optim::Adam;
use tinylm::{CondLm, GradBuffer, LmError};

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// DPO inverse-temperature `β`.
    pub beta: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Pairs per gradient step.
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Pairs sampled per epoch (`None` = the full dataset per epoch).
    ///
    /// The paper trains on ~3000 pairs for 200 epochs on GPUs; sampling a
    /// subset per epoch keeps the reproduction's CPU budget proportionate
    /// while preserving the training dynamics.
    pub pairs_per_epoch: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            beta: 0.5,
            lr: 5e-3,
            batch_size: 8,
            epochs: 200,
            pairs_per_epoch: Some(64),
        }
    }
}

/// Metrics for one epoch — the three panels of the paper's Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean DPO loss over the epoch's pairs.
    pub loss: f32,
    /// Mean accuracy `1[P(y_w|x,θ) > P(y_l|x,θ)]`.
    pub accuracy: f32,
    /// Mean marginal preference.
    pub margin: f32,
}

/// A minibatch DPO trainer with per-epoch metrics and periodic
/// checkpoints.
#[derive(Debug, Clone)]
pub struct DpoTrainer {
    /// Hyperparameters.
    pub options: TrainOptions,
}

impl DpoTrainer {
    /// Creates a trainer.
    pub fn new(options: TrainOptions) -> Self {
        DpoTrainer { options }
    }

    /// Fine-tunes `policy` in place against the frozen `reference`.
    ///
    /// `checkpoint` is invoked as `(epoch_just_finished, &policy)` after
    /// every epoch; callers typically snapshot the model every 20 epochs,
    /// matching the paper's checkpointing cadence.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] if the dataset references tasks or tokens the
    /// models do not know.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(
        &self,
        policy: &mut CondLm,
        reference: &CondLm,
        dataset: &PreferenceDataset,
        rng: &mut impl Rng,
        mut checkpoint: impl FnMut(usize, &CondLm),
    ) -> Result<Vec<EpochStats>, LmError> {
        assert!(!dataset.is_empty(), "preference dataset must be non-empty");
        let opts = self.options;
        let mut adam = Adam::new(opts.lr, policy.params().len());
        let mut stats = Vec::with_capacity(opts.epochs);
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        for epoch in 0..opts.epochs {
            indices.shuffle(rng);
            let take = opts
                .pairs_per_epoch
                .unwrap_or(dataset.len())
                .min(dataset.len());
            let epoch_pairs = &indices[..take];

            let mut sum = PairEval {
                loss: 0.0,
                correct: 0.0,
                margin: 0.0,
            };
            for batch in epoch_pairs.chunks(opts.batch_size) {
                let mut grad = GradBuffer::zeros(policy);
                for &i in batch {
                    let (eval, g) = dpo_loss_grad(policy, reference, &dataset.pairs[i], opts.beta)?;
                    sum.loss += eval.loss;
                    sum.correct += eval.correct;
                    sum.margin += eval.margin;
                    grad.add_scaled(&g, 1.0 / batch.len() as f32);
                }
                adam.step(policy.params_mut(), &grad.0);
            }
            let n = epoch_pairs.len() as f32;
            let epoch_stats = EpochStats {
                epoch,
                loss: sum.loss / n,
                accuracy: sum.correct / n,
                margin: sum.margin / n,
            };
            obskit::counter_add("dpo.pairs_trained", epoch_pairs.len() as u64);
            obskit::event(
                "dpo.epoch",
                vec![
                    ("epoch", epoch.into()),
                    ("loss", epoch_stats.loss.into()),
                    ("accuracy", epoch_stats.accuracy.into()),
                    ("margin", epoch_stats.margin.into()),
                ],
            );
            stats.push(epoch_stats);
            checkpoint(epoch, policy);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PreferencePair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinylm::{AdaptMode, LmConfig};

    fn setup() -> (CondLm, CondLm, PreferenceDataset) {
        let cfg = LmConfig {
            vocab_size: 10,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 8,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let policy = CondLm::new(cfg, &mut rng);
        let reference = policy.clone();
        let mut ds = PreferenceDataset::new();
        // Consistent preferences: task 0 prefers "3 4 5", task 1 "5 4".
        for _ in 0..4 {
            ds.push(PreferencePair {
                task: 0,
                winner: vec![3, 4, 5],
                loser: vec![6, 7],
            });
            ds.push(PreferencePair {
                task: 1,
                winner: vec![5, 4],
                loser: vec![3, 3, 3],
            });
        }
        (policy, reference, ds)
    }

    #[test]
    fn training_improves_all_three_metrics() {
        let (mut policy, reference, ds) = setup();
        let trainer = DpoTrainer::new(TrainOptions {
            beta: 0.5,
            lr: 0.02,
            batch_size: 4,
            epochs: 30,
            pairs_per_epoch: None,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let stats = trainer
            .train(&mut policy, &reference, &ds, &mut rng, |_, _| {})
            .unwrap();
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(last.loss < first.loss, "{first:?} -> {last:?}");
        assert!(last.accuracy >= first.accuracy);
        assert_eq!(last.accuracy, 1.0);
        assert!(last.margin > 0.5);
        // The reference stayed frozen; policy diverged from it.
        assert_ne!(policy.params(), reference.params());
    }

    #[test]
    fn checkpoints_fire_each_epoch() {
        let (mut policy, reference, ds) = setup();
        let trainer = DpoTrainer::new(TrainOptions {
            epochs: 5,
            pairs_per_epoch: Some(2),
            ..TrainOptions::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = Vec::new();
        trainer
            .train(&mut policy, &reference, &ds, &mut rng, |e, m| {
                seen.push((e, m.params().len()));
            })
            .unwrap();
        assert_eq!(
            seen.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (policy0, reference, mut ds) = setup();
        // Heterogeneous extra pairs so that epoch subsampling differs
        // between seeds.
        for t in 0..8u32 {
            ds.push(PreferencePair {
                task: 0,
                winner: vec![3 + (t % 5), 4],
                loser: vec![8, 7 - (t % 3)],
            });
        }
        let trainer = DpoTrainer::new(TrainOptions {
            epochs: 3,
            pairs_per_epoch: Some(4),
            ..TrainOptions::default()
        });
        let run = |seed: u64| {
            let mut p = policy0.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let stats = trainer
                .train(&mut p, &reference, &ds, &mut rng, |_, _| {})
                .unwrap();
            (p, stats)
        };
        let (p1, s1) = run(7);
        let (p2, s2) = run(7);
        assert_eq!(p1.params(), p2.params());
        assert_eq!(s1, s2);
        let (_, s3) = run(8);
        assert_ne!(s1, s3, "different seeds should differ (data order)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        let (mut policy, reference, _) = setup();
        let trainer = DpoTrainer::new(TrainOptions::default());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = trainer.train(
            &mut policy,
            &reference,
            &PreferenceDataset::new(),
            &mut rng,
            |_, _| {},
        );
    }
}
