use crate::loss::pair_grad_under;
use crate::{PairEval, PreferenceDataset};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tinylm::optim::Adam;
use tinylm::{CondLm, GradBuffer, LmError};

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// DPO inverse-temperature `β`.
    pub beta: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Pairs per gradient step.
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Pairs sampled per epoch (`None` = the full dataset per epoch).
    ///
    /// The paper trains on ~3000 pairs for 200 epochs on GPUs; sampling a
    /// subset per epoch keeps the reproduction's CPU budget proportionate
    /// while preserving the training dynamics.
    pub pairs_per_epoch: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            beta: 0.5,
            lr: 5e-3,
            batch_size: 8,
            epochs: 200,
            pairs_per_epoch: Some(64),
        }
    }
}

/// Metrics for one epoch — the three panels of the paper's Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean DPO loss over the epoch's pairs.
    pub loss: f32,
    /// Mean accuracy `1[P(y_w|x,θ) > P(y_l|x,θ)]`.
    pub accuracy: f32,
    /// Mean marginal preference.
    pub margin: f32,
}

/// A minibatch DPO trainer with per-epoch metrics and periodic
/// checkpoints.
#[derive(Debug, Clone)]
pub struct DpoTrainer {
    /// Hyperparameters.
    pub options: TrainOptions,
    /// Precompute the frozen reference's per-pair sequence logprobs once
    /// per [`DpoTrainer::train`] call instead of re-running the reference
    /// forward for every pair in every epoch. The reference never changes
    /// during training, so this is exact memoization — results are
    /// bit-identical either way. Defaults to on; turning it off exists
    /// for the equivalence tests and CI byte-equality gate.
    pub ref_cache: bool,
    /// Fan each pair's backward matmul gradient work over the pool
    /// (intra-pair parallelism) instead of fanning whole pairs out
    /// (inter-pair parallelism). When set, pairs run serially and
    /// [`tinylm::CondLm::seq_grad_pooled_in`] splits the matmul gradients
    /// into contiguous blocks — byte-identical at any thread count, like
    /// the per-pair fan-out, but with parallelism available even at
    /// `batch_size` 1. The two strategies are exclusive so they never
    /// contend for the same workers. Defaults to off.
    pub pool_backward: bool,
}

impl DpoTrainer {
    /// Creates a trainer (reference-logprob cache enabled).
    pub fn new(options: TrainOptions) -> Self {
        DpoTrainer {
            options,
            ref_cache: true,
            pool_backward: false,
        }
    }

    /// Returns this trainer with the reference-logprob cache toggled.
    #[must_use]
    pub fn with_ref_cache(mut self, on: bool) -> Self {
        self.ref_cache = on;
        self
    }

    /// Returns this trainer with the pooled backward pass toggled (see
    /// [`DpoTrainer::pool_backward`]).
    #[must_use]
    pub fn with_pool_backward(mut self, on: bool) -> Self {
        self.pool_backward = on;
        self
    }

    /// Fine-tunes `policy` in place against the frozen `reference`.
    ///
    /// `checkpoint` is invoked as `(epoch_just_finished, &policy)` after
    /// every epoch; callers typically snapshot the model every 20 epochs,
    /// matching the paper's checkpointing cadence.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] if the dataset references tasks or tokens the
    /// models do not know.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(
        &self,
        policy: &mut CondLm,
        reference: &CondLm,
        dataset: &PreferenceDataset,
        rng: &mut impl Rng,
        checkpoint: impl FnMut(usize, &CondLm),
    ) -> Result<Vec<EpochStats>, LmError> {
        self.train_in(policy, reference, dataset, rng, checkpoint, None)
    }

    /// [`DpoTrainer::train`] with per-pair gradient computations fanned
    /// out over `pool` (when given and wider than one thread), mirroring
    /// `tinylm::pretrain_in`.
    ///
    /// Parallelism never changes the math: the RNG-driven epoch shuffle
    /// stays sequential, per-pair gradients are pure functions of the
    /// frozen pre-step parameters, and the batch reduction folds results
    /// **in batch order** — the same float additions in the same order as
    /// the sequential loop, so trained weights are byte-identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LmError`] if the dataset references tasks or tokens the
    /// models do not know.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train_in(
        &self,
        policy: &mut CondLm,
        reference: &CondLm,
        dataset: &PreferenceDataset,
        rng: &mut impl Rng,
        mut checkpoint: impl FnMut(usize, &CondLm),
        pool: Option<&parkit::ThreadPool>,
    ) -> Result<Vec<EpochStats>, LmError> {
        assert!(!dataset.is_empty(), "preference dataset must be non-empty");
        let opts = self.options;
        let started = std::time::Instant::now();
        let mut adam = Adam::new(opts.lr, policy.params().len());
        let mut stats = Vec::with_capacity(opts.epochs);
        let mut indices: Vec<usize> = (0..dataset.len()).collect();

        // Frozen-reference memoization: the reference's sequence
        // logprobs are pure functions of each pair, so computing them
        // once here and reusing the same f32s every epoch is exact —
        // ~one reference forward per pair total instead of one per pair
        // per epoch. Register the hit counter up front so metrics
        // reports always carry it.
        obskit::counter_add("dpo.ref_cache_hits", 0);
        let ref_lps: Option<Vec<(f32, f32)>> = if self.ref_cache {
            let _s = obskit::span("dpo.ref");
            Some(
                dataset
                    .pairs
                    .iter()
                    .map(|p| {
                        Ok((
                            reference.log_prob(p.task, &p.winner)?,
                            reference.log_prob(p.task, &p.loser)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, LmError>>()?,
            )
        } else {
            None
        };

        let mut tokens_seen = 0u64;
        for epoch in 0..opts.epochs {
            indices.shuffle(rng);
            let take = opts
                .pairs_per_epoch
                .unwrap_or(dataset.len())
                .min(dataset.len());
            let epoch_pairs = &indices[..take];

            // Scoped so the epoch span closes before the checkpoint
            // callback — checkpoint evals must not nest under it.
            let mut sum = PairEval {
                loss: 0.0,
                correct: 0.0,
                margin: 0.0,
            };
            {
                let epoch_span = obskit::span("dpo.epoch");
                let under = Some(epoch_span.handoff());
                let pair_grad =
                    |i: usize, policy: &CondLm, bw_pool: Option<&parkit::ThreadPool>| {
                        let pair = &dataset.pairs[i];
                        let (ref_w, ref_l) = match &ref_lps {
                            Some(cache) => {
                                obskit::counter_add("dpo.ref_cache_hits", 2);
                                cache[i]
                            }
                            None => (
                                reference.log_prob(pair.task, &pair.winner)?,
                                reference.log_prob(pair.task, &pair.loser)?,
                            ),
                        };
                        pair_grad_under(policy, pair, ref_w, ref_l, opts.beta, under, bw_pool)
                    };
                for batch in epoch_pairs.chunks(opts.batch_size) {
                    let mut grad = GradBuffer::zeros(policy);
                    let per_pair: Vec<(PairEval, GradBuffer)> = match pool {
                        // Intra-pair parallelism: pairs stay serial, each
                        // backward fans its matmul gradients over the pool.
                        Some(pool) if self.pool_backward && pool.threads() > 1 => batch
                            .iter()
                            .map(|&i| pair_grad(i, policy, Some(pool)))
                            .collect::<Result<Vec<_>, LmError>>()?,
                        Some(pool) if pool.threads() > 1 => {
                            let frozen: &CondLm = policy;
                            pool.map(batch, |_, &i| pair_grad(i, frozen, None))
                                .into_iter()
                                .collect::<Result<Vec<_>, LmError>>()?
                        }
                        _ => batch
                            .iter()
                            .map(|&i| pair_grad(i, policy, None))
                            .collect::<Result<Vec<_>, LmError>>()?,
                    };
                    for (&i, (eval, g)) in batch.iter().zip(&per_pair) {
                        let pair = &dataset.pairs[i];
                        tokens_seen += (pair.winner.len() + pair.loser.len() + 2) as u64;
                        sum.loss += eval.loss;
                        sum.correct += eval.correct;
                        sum.margin += eval.margin;
                        grad.add_scaled(g, 1.0 / batch.len() as f32);
                    }
                    adam.step(policy.params_mut(), &grad.0);
                }
            }
            let n = epoch_pairs.len() as f32;
            let epoch_stats = EpochStats {
                epoch,
                loss: sum.loss / n,
                accuracy: sum.correct / n,
                margin: sum.margin / n,
            };
            obskit::counter_add("dpo.pairs_trained", epoch_pairs.len() as u64);
            obskit::event(
                "dpo.epoch",
                vec![
                    ("epoch", epoch.into()),
                    ("loss", epoch_stats.loss.into()),
                    ("accuracy", epoch_stats.accuracy.into()),
                    ("margin", epoch_stats.margin.into()),
                ],
            );
            stats.push(epoch_stats);
            checkpoint(epoch, policy);
            // Training epochs are a flight-recorder beat (throttled).
            obskit::recorder::tick();
        }
        if obskit::enabled() {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                obskit::gauge_set("dpo.tokens_per_sec", tokens_seen as f64 / secs);
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PreferencePair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinylm::{AdaptMode, LmConfig};

    fn setup() -> (CondLm, CondLm, PreferenceDataset) {
        let cfg = LmConfig {
            vocab_size: 10,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 8,
            adapt: AdaptMode::Full,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let policy = CondLm::new(cfg, &mut rng);
        let reference = policy.clone();
        let mut ds = PreferenceDataset::new();
        // Consistent preferences: task 0 prefers "3 4 5", task 1 "5 4".
        for _ in 0..4 {
            ds.push(PreferencePair {
                task: 0,
                winner: vec![3, 4, 5],
                loser: vec![6, 7],
            });
            ds.push(PreferencePair {
                task: 1,
                winner: vec![5, 4],
                loser: vec![3, 3, 3],
            });
        }
        (policy, reference, ds)
    }

    #[test]
    fn training_improves_all_three_metrics() {
        let (mut policy, reference, ds) = setup();
        let trainer = DpoTrainer::new(TrainOptions {
            beta: 0.5,
            lr: 0.02,
            batch_size: 4,
            epochs: 30,
            pairs_per_epoch: None,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let stats = trainer
            .train(&mut policy, &reference, &ds, &mut rng, |_, _| {})
            .unwrap();
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(last.loss < first.loss, "{first:?} -> {last:?}");
        assert!(last.accuracy >= first.accuracy);
        assert_eq!(last.accuracy, 1.0);
        assert!(last.margin > 0.5);
        // The reference stayed frozen; policy diverged from it.
        assert_ne!(policy.params(), reference.params());
    }

    #[test]
    fn checkpoints_fire_each_epoch() {
        let (mut policy, reference, ds) = setup();
        let trainer = DpoTrainer::new(TrainOptions {
            epochs: 5,
            pairs_per_epoch: Some(2),
            ..TrainOptions::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = Vec::new();
        trainer
            .train(&mut policy, &reference, &ds, &mut rng, |e, m| {
                seen.push((e, m.params().len()));
            })
            .unwrap();
        assert_eq!(
            seen.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (policy0, reference, mut ds) = setup();
        // Heterogeneous extra pairs so that epoch subsampling differs
        // between seeds.
        for t in 0..8u32 {
            ds.push(PreferencePair {
                task: 0,
                winner: vec![3 + (t % 5), 4],
                loser: vec![8, 7 - (t % 3)],
            });
        }
        let trainer = DpoTrainer::new(TrainOptions {
            epochs: 3,
            pairs_per_epoch: Some(4),
            ..TrainOptions::default()
        });
        let run = |seed: u64| {
            let mut p = policy0.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let stats = trainer
                .train(&mut p, &reference, &ds, &mut rng, |_, _| {})
                .unwrap();
            (p, stats)
        };
        let (p1, s1) = run(7);
        let (p2, s2) = run(7);
        assert_eq!(p1.params(), p2.params());
        assert_eq!(s1, s2);
        let (_, s3) = run(8);
        assert_ne!(s1, s3, "different seeds should differ (data order)");
    }

    /// Heterogeneous dataset used by the equivalence tests.
    fn varied_dataset() -> (CondLm, CondLm, PreferenceDataset) {
        let (policy, reference, mut ds) = setup();
        for t in 0..9u32 {
            ds.push(PreferencePair {
                task: (t % 2) as usize,
                winner: vec![3 + (t % 5), 4, 5 + (t % 3)],
                loser: vec![8, 7 - (t % 3), 6, 3 + (t % 4)],
            });
        }
        (policy, reference, ds)
    }

    /// The reference-logprob cache is exact memoization: per-epoch stats
    /// and final weights are bit-identical with it on or off.
    #[test]
    fn ref_cache_is_bit_exact() {
        let (policy0, reference, ds) = varied_dataset();
        let opts = TrainOptions {
            epochs: 4,
            pairs_per_epoch: Some(6),
            batch_size: 4,
            ..TrainOptions::default()
        };
        let run = |cache: bool| {
            let trainer = DpoTrainer::new(opts).with_ref_cache(cache);
            let mut p = policy0.clone();
            let mut rng = StdRng::seed_from_u64(13);
            let stats = trainer
                .train(&mut p, &reference, &ds, &mut rng, |_, _| {})
                .unwrap();
            (p, stats)
        };
        let (p_on, s_on) = run(true);
        let (p_off, s_off) = run(false);
        assert_eq!(s_on, s_off, "EpochStats must not change with the cache");
        assert_eq!(
            p_on.params(),
            p_off.params(),
            "weights must be bit-identical"
        );
    }

    /// Pooled pair gradients reduce in batch order, so training is
    /// byte-identical at any thread count.
    #[test]
    fn pooled_training_is_bit_identical() {
        let (policy0, reference, ds) = varied_dataset();
        let opts = TrainOptions {
            epochs: 3,
            pairs_per_epoch: Some(8),
            batch_size: 4,
            ..TrainOptions::default()
        };
        let trainer = DpoTrainer::new(opts);
        let run = |pool: Option<&parkit::ThreadPool>| {
            let mut p = policy0.clone();
            let mut rng = StdRng::seed_from_u64(21);
            let stats = trainer
                .train_in(&mut p, &reference, &ds, &mut rng, |_, _| {}, pool)
                .unwrap();
            (p, stats)
        };
        let (p_serial, s_serial) = run(None);
        for threads in [2, 4] {
            let pool = parkit::ThreadPool::new(threads);
            let (p_pooled, s_pooled) = run(Some(&pool));
            assert_eq!(
                p_serial.params(),
                p_pooled.params(),
                "weights diverged at {threads} threads"
            );
            assert_eq!(s_serial, s_pooled);
        }
    }

    /// The pooled backward pass splits matmul gradients into disjoint
    /// contiguous blocks whose folds are complete per element, so
    /// training with it is byte-identical to serial at any thread count.
    #[test]
    fn pooled_backward_is_bit_identical() {
        let (policy0, reference, ds) = varied_dataset();
        let opts = TrainOptions {
            epochs: 3,
            pairs_per_epoch: Some(8),
            batch_size: 4,
            ..TrainOptions::default()
        };
        let run = |pool: Option<&parkit::ThreadPool>, pool_backward: bool| {
            let trainer = DpoTrainer::new(opts).with_pool_backward(pool_backward);
            let mut p = policy0.clone();
            let mut rng = StdRng::seed_from_u64(29);
            let stats = trainer
                .train_in(&mut p, &reference, &ds, &mut rng, |_, _| {}, pool)
                .unwrap();
            (p, stats)
        };
        let (p_serial, s_serial) = run(None, false);
        for threads in [2, 4] {
            let pool = parkit::ThreadPool::new(threads);
            let (p_pooled, s_pooled) = run(Some(&pool), true);
            assert_eq!(
                p_serial.params(),
                p_pooled.params(),
                "weights diverged with the pooled backward at {threads} threads"
            );
            assert_eq!(s_serial, s_pooled);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        let (mut policy, reference, _) = setup();
        let trainer = DpoTrainer::new(TrainOptions::default());
        let mut rng = StdRng::seed_from_u64(0);
        let _ = trainer.train(
            &mut policy,
            &reference,
            &PreferenceDataset::new(),
            &mut rng,
            |_, _| {},
        );
    }
}
