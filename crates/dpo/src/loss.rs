use crate::PreferencePair;
use serde::{Deserialize, Serialize};
use tinylm::{CondLm, GradBuffer, LmError, SeqWorkspace};

/// Loss and metrics of one pair at the current parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairEval {
    /// DPO loss `−log σ(β·margin)`.
    pub loss: f32,
    /// `1.0` iff the policy assigns the winner a higher likelihood than
    /// the loser (`P(y_w|x,θ) > P(y_l|x,θ)`), the paper's accuracy term.
    pub correct: f32,
    /// Marginal preference
    /// `(log πθ(y_w) − log πref(y_w)) − (log πθ(y_l) − log πref(y_l))`.
    pub margin: f32,
}

/// Computes the DPO loss, metrics and the gradient of the loss with
/// respect to the policy parameters for one preference pair.
///
/// The gradient uses the closed form
///
/// ```text
/// ∇θ L = −β · σ(−β·margin) · ( ∇θ log πθ(y_w|x) − ∇θ log πθ(y_l|x) )
/// ```
///
/// so only the two sequence-likelihood gradients are needed.
///
/// # Errors
///
/// Returns [`LmError`] if the pair references unknown tasks or tokens.
///
/// # Example
///
/// ```
/// use dpo::{dpo_loss_grad, PreferencePair};
/// use rand::SeedableRng;
/// use tinylm::{AdaptMode, CondLm, LmConfig};
///
/// let cfg = LmConfig { vocab_size: 8, num_tasks: 1, adapt: AdaptMode::Full, ..LmConfig::default() };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let policy = CondLm::new(cfg, &mut rng);
/// let reference = policy.clone();
/// let pair = PreferencePair { task: 0, winner: vec![3, 4], loser: vec![5] };
/// let (eval, grad) = dpo_loss_grad(&policy, &reference, &pair, 0.5)?;
/// // At θ = θref the margin is exactly zero and the loss is ln 2.
/// assert!((eval.margin).abs() < 1e-5);
/// assert!((eval.loss - std::f32::consts::LN_2).abs() < 1e-5);
/// assert_eq!(grad.0.len(), policy.params().len());
/// # Ok::<(), tinylm::LmError>(())
/// ```
pub fn dpo_loss_grad(
    policy: &CondLm,
    reference: &CondLm,
    pair: &PreferencePair,
    beta: f32,
) -> Result<(PairEval, GradBuffer), LmError> {
    let ref_w = reference.log_prob(pair.task, &pair.winner)?;
    let ref_l = reference.log_prob(pair.task, &pair.loser)?;
    dpo_loss_grad_with_ref(policy, pair, ref_w, ref_l, beta)
}

/// [`dpo_loss_grad`] with the frozen reference's sequence log-likelihoods
/// already known.
///
/// The reference model never changes during a [`crate::DpoTrainer::train`]
/// call, so `reference.log_prob(task, y)` is a pure function of the pair —
/// precomputing it once per training run and passing the same `f32`s here
/// is *exact* memoization: every downstream float operation sees identical
/// inputs, and results are bit-identical to [`dpo_loss_grad`].
///
/// # Errors
///
/// Returns [`LmError`] if the pair references unknown tasks or tokens.
pub fn dpo_loss_grad_with_ref(
    policy: &CondLm,
    pair: &PreferencePair,
    ref_w: f32,
    ref_l: f32,
    beta: f32,
) -> Result<(PairEval, GradBuffer), LmError> {
    pair_grad_under(policy, pair, ref_w, ref_l, beta, None, None)
}

/// Opens a span under an explicit cross-thread parent when one is given,
/// or under the ambient thread-local parent otherwise.
fn maybe_span_under(name: &str, under: Option<obskit::Handoff>) -> obskit::Span {
    match under {
        Some(h) => obskit::span_under(name, h),
        None => obskit::span(name),
    }
}

/// The shared pair-gradient body: batched winner/loser graphs on one
/// recycled workspace tape, with `dpo.forward` / `dpo.backward` child
/// spans (parented under `under` so pooled workers attach to the epoch
/// span). When `pool` is given the backward passes fan their matmul
/// gradient work over it via [`CondLm::seq_grad_pooled_in`] —
/// byte-identical at any thread count.
pub(crate) fn pair_grad_under(
    policy: &CondLm,
    pair: &PreferencePair,
    ref_w: f32,
    ref_l: f32,
    beta: f32,
    under: Option<obskit::Handoff>,
    pool: Option<&parkit::ThreadPool>,
) -> Result<(PairEval, GradBuffer), LmError> {
    SeqWorkspace::with_tls(|ws| {
        ws.reset();
        let (graph_w, graph_l) = {
            let _s = maybe_span_under("dpo.forward", under);
            (
                policy.seq_forward_in(pair.task, &pair.winner, ws)?,
                policy.seq_forward_in(pair.task, &pair.loser, ws)?,
            )
        };
        let (lp_w, lp_l) = (graph_w.value(), graph_l.value());
        let (grad_w, grad_l) = {
            let _s = maybe_span_under("dpo.backward", under);
            match pool {
                Some(pool) => (
                    policy.seq_grad_pooled_in(&graph_w, ws, pool),
                    policy.seq_grad_pooled_in(&graph_l, ws, pool),
                ),
                None => (
                    policy.seq_grad_in(&graph_w, ws),
                    policy.seq_grad_in(&graph_l, ws),
                ),
            }
        };

        let margin = (lp_w - ref_w) - (lp_l - ref_l);
        let z = beta * margin;
        // loss = −log σ(z), computed stably.
        let loss = (-z).max(0.0) + (-(z.abs())).exp().ln_1p();
        // dloss/dz = −σ(−z)
        let sig_neg = 1.0 / (1.0 + z.exp());
        let coeff = -beta * sig_neg;

        let mut grad = grad_w;
        grad.scale(coeff);
        grad.add_scaled(&grad_l, -coeff);

        let correct = if lp_w > lp_l { 1.0 } else { 0.0 };
        Ok((
            PairEval {
                loss,
                correct,
                margin,
            },
            grad,
        ))
    })
}

/// Computes the **IPO** loss (Azar et al., 2023) and its gradient for one
/// pair: `L = (margin − 1/(2τ))²` with the same margin as DPO.
///
/// IPO regresses the preference margin to a fixed target instead of
/// pushing it to infinity through a sigmoid, which is more robust to
/// deterministic (noise-free) preferences — exactly the kind automated
/// verification feedback produces. Provided as the paper-adjacent
/// alternative objective for the ablation suite.
///
/// # Errors
///
/// Returns [`LmError`] if the pair references unknown tasks or tokens.
pub fn ipo_loss_grad(
    policy: &CondLm,
    reference: &CondLm,
    pair: &PreferencePair,
    tau: f32,
) -> Result<(PairEval, GradBuffer), LmError> {
    let (lp_w, grad_w) = policy.log_prob_grad(pair.task, &pair.winner)?;
    let (lp_l, grad_l) = policy.log_prob_grad(pair.task, &pair.loser)?;
    let ref_w = reference.log_prob(pair.task, &pair.winner)?;
    let ref_l = reference.log_prob(pair.task, &pair.loser)?;

    let margin = (lp_w - ref_w) - (lp_l - ref_l);
    let target = 1.0 / (2.0 * tau);
    let diff = margin - target;
    let loss = diff * diff;
    // dL/dθ = 2(margin − target) · (∇log πθ(y_w) − ∇log πθ(y_l))
    let coeff = 2.0 * diff;
    let mut grad = grad_w;
    grad.scale(coeff);
    grad.add_scaled(&grad_l, -coeff);

    Ok((
        PairEval {
            loss,
            correct: if lp_w > lp_l { 1.0 } else { 0.0 },
            margin,
        },
        grad,
    ))
}

/// Evaluates loss/accuracy/margin without computing gradients (cheap; for
/// held-out metrics).
///
/// # Errors
///
/// Returns [`LmError`] if the pair references unknown tasks or tokens.
pub fn eval_pair(
    policy: &CondLm,
    reference: &CondLm,
    pair: &PreferencePair,
    beta: f32,
) -> Result<PairEval, LmError> {
    let lp_w = policy.log_prob(pair.task, &pair.winner)?;
    let lp_l = policy.log_prob(pair.task, &pair.loser)?;
    let ref_w = reference.log_prob(pair.task, &pair.winner)?;
    let ref_l = reference.log_prob(pair.task, &pair.loser)?;
    let margin = (lp_w - ref_w) - (lp_l - ref_l);
    let z = beta * margin;
    let loss = (-z).max(0.0) + (-(z.abs())).exp().ln_1p();
    Ok(PairEval {
        loss,
        correct: if lp_w > lp_l { 1.0 } else { 0.0 },
        margin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinylm::{AdaptMode, LmConfig};

    fn setup(adapt: AdaptMode) -> (CondLm, CondLm, PreferencePair) {
        let cfg = LmConfig {
            vocab_size: 10,
            num_tasks: 2,
            token_dim: 4,
            task_dim: 3,
            context: 2,
            hidden: 6,
            adapt,
            lora_scale: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let policy = CondLm::new(cfg, &mut rng);
        let reference = policy.clone();
        let pair = PreferencePair {
            task: 1,
            winner: vec![3, 4, 5],
            loser: vec![6, 7],
        };
        (policy, reference, pair)
    }

    #[test]
    fn at_reference_loss_is_ln2_and_margin_zero() {
        let (policy, reference, pair) = setup(AdaptMode::Full);
        let (eval, _) = dpo_loss_grad(&policy, &reference, &pair, 0.7).unwrap();
        assert!(eval.margin.abs() < 1e-4);
        assert!((eval.loss - std::f32::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (policy, reference, pair) = setup(AdaptMode::Full);
        let beta = 0.6;
        let (_, grad) = dpo_loss_grad(&policy, &reference, &pair, beta).unwrap();
        for &i in &[0usize, 17, 99] {
            let h = 1e-2f32;
            let mut pp = policy.clone();
            pp.params_mut()[i] += h;
            let mut pm = policy.clone();
            pm.params_mut()[i] -= h;
            let (ep, _) = dpo_loss_grad(&pp, &reference, &pair, beta).unwrap();
            let (em, _) = dpo_loss_grad(&pm, &reference, &pair, beta).unwrap();
            let num = (ep.loss - em.loss) / (2.0 * h);
            assert!(
                (num - grad.0[i]).abs() < 3e-2,
                "param {i}: numeric {num} vs analytic {}",
                grad.0[i]
            );
        }
    }

    #[test]
    fn descending_the_gradient_reduces_loss_and_raises_margin() {
        let (mut policy, reference, pair) = setup(AdaptMode::Full);
        let beta = 0.5;
        let (before, grad) = dpo_loss_grad(&policy, &reference, &pair, beta).unwrap();
        for (p, g) in policy.params_mut().iter_mut().zip(&grad.0) {
            *p -= 0.1 * g;
        }
        let (after, _) = dpo_loss_grad(&policy, &reference, &pair, beta).unwrap();
        assert!(after.loss < before.loss);
        assert!(after.margin > before.margin);
    }

    #[test]
    fn lora_gradient_respects_freezing() {
        let (policy, reference, pair) = setup(AdaptMode::Lora { rank: 2 });
        let (_, grad) = dpo_loss_grad(&policy, &reference, &pair, 0.5).unwrap();
        let mask = policy.trainable_mask();
        for (g, m) in grad.0.iter().zip(mask) {
            if !m {
                assert_eq!(*g, 0.0);
            }
        }
        assert!(grad.norm() > 0.0);
    }

    #[test]
    fn ipo_gradient_matches_finite_difference() {
        let (policy, reference, pair) = setup(AdaptMode::Full);
        let tau = 0.3;
        let (_, grad) = ipo_loss_grad(&policy, &reference, &pair, tau).unwrap();
        for &i in &[0usize, 23, 77] {
            let h = 1e-2f32;
            let mut pp = policy.clone();
            pp.params_mut()[i] += h;
            let mut pm = policy.clone();
            pm.params_mut()[i] -= h;
            let (ep, _) = ipo_loss_grad(&pp, &reference, &pair, tau).unwrap();
            let (em, _) = ipo_loss_grad(&pm, &reference, &pair, tau).unwrap();
            let num = (ep.loss - em.loss) / (2.0 * h);
            assert!(
                (num - grad.0[i]).abs() < 0.1,
                "param {i}: numeric {num} vs analytic {}",
                grad.0[i]
            );
        }
    }

    #[test]
    fn ipo_minimizes_at_target_margin() {
        let (mut policy, reference, pair) = setup(AdaptMode::Full);
        let tau = 0.5; // target margin = 1.0
        for _ in 0..300 {
            let (_, grad) = ipo_loss_grad(&policy, &reference, &pair, tau).unwrap();
            for (p, g) in policy.params_mut().iter_mut().zip(&grad.0) {
                *p -= 0.01 * g;
            }
        }
        let (eval, _) = ipo_loss_grad(&policy, &reference, &pair, tau).unwrap();
        assert!(
            (eval.margin - 1.0).abs() < 0.2,
            "margin should settle near the IPO target: {}",
            eval.margin
        );
    }

    #[test]
    fn eval_pair_matches_loss_grad() {
        let (policy, reference, pair) = setup(AdaptMode::Full);
        let (a, _) = dpo_loss_grad(&policy, &reference, &pair, 0.4).unwrap();
        let b = eval_pair(&policy, &reference, &pair, 0.4).unwrap();
        assert!((a.loss - b.loss).abs() < 1e-5);
        assert_eq!(a.correct, b.correct);
        assert!((a.margin - b.margin).abs() < 1e-5);
    }
}
