//! # glm2fsa — controllers from natural-language step lists
//!
//! Reimplementation of the **GLM2FSA** algorithm (Yang et al., 2022) used
//! by *"Fine-Tuning Language Models Using Formal Methods Feedback"*
//! (MLSys 2024) to convert a language model's step-by-step task
//! instructions into a finite-state-automaton controller:
//!
//! 1. **Alignment** ([`Lexicon::align`]) — canonicalize paraphrases to the
//!    domain's proposition/action vocabulary (the paper's second LM query:
//!    *"Rephrase the following steps to align the defined Boolean
//!    Propositions … and Actions …"*).
//! 2. **Semantic parsing** ([`parse_step`]) — break each step into verb
//!    phrases and keywords (`observe`, `if`, negations), producing a
//!    [`ParsedStep`]: a literal guard plus either an observation or an
//!    action.
//! 3. **FSA construction** ([`build_controller`]) — one controller state
//!    per step, the first step initial, `if`-guards on transitions, and a
//!    wait self-loop when a guard is not met.
//!
//! The end-to-end entry point is [`synthesize`].
//!
//! ## Example: the paper's fine-tuned right-turn controller (Fig. 7 right)
//!
//! ```
//! use autokit::presets::DrivingDomain;
//! use glm2fsa::{synthesize, FsaOptions, Lexicon};
//!
//! let domain = DrivingDomain::new();
//! let lexicon = Lexicon::driving(&domain);
//! let steps = [
//!     "Observe the traffic light in front of you.",
//!     "Check for the left approaching car and right side pedestrian.",
//!     "If no car from the left and no pedestrian at right, turn right.",
//! ];
//! let ctrl = synthesize(
//!     "turn right at traffic light",
//!     &steps,
//!     &lexicon,
//!     FsaOptions::default(),
//! )?;
//! assert_eq!(ctrl.num_states(), 3);
//! # Ok::<(), glm2fsa::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod error;
mod lexicon;
mod parse;

pub use build::{build_controller, with_default_action, FsaOptions, OnComplete};
pub use error::SynthesisError;
pub use lexicon::Lexicon;
pub use parse::{parse_step, ParsedStep, StepKind};

use autokit::Controller;

/// Converts a natural-language step list into an FSA controller:
/// align → parse each step → build.
///
/// # Errors
///
/// Returns [`SynthesisError`] when a step cannot be parsed against the
/// lexicon (the response "failed to align", in the paper's terms) or the
/// step list is empty.
pub fn synthesize<S: AsRef<str>>(
    name: &str,
    steps: &[S],
    lexicon: &Lexicon,
    options: FsaOptions,
) -> Result<Controller, SynthesisError> {
    if steps.is_empty() {
        return Err(SynthesisError::EmptyStepList);
    }
    let parsed: Vec<ParsedStep> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            parse_step(s.as_ref(), lexicon).map_err(|reason| SynthesisError::UnparsableStep {
                index: i,
                text: s.as_ref().to_owned(),
                reason,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(build_controller(name, &parsed, options))
}
