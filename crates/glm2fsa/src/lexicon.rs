use autokit::{presets::DrivingDomain, ActId, PropId, Vocab};
use serde::{Deserialize, Serialize};

/// A phrase dictionary mapping natural-language paraphrases onto canonical
/// propositions and actions.
///
/// The lexicon drives both stages of the paper's text processing:
///
/// * [`Lexicon::align`] rewrites paraphrases in a step to the canonical
///   vocabulary — the role the paper assigns to a second language-model
///   query ("Rephrase the following steps to align the defined Boolean
///   Propositions … and Actions …"). Deterministic rewriting is used here
///   because what DPO-AF needs from alignment is a *canonical form with a
///   failure mode*: phrases outside the lexicon do not align, and the
///   resulting synthesis failure is (correctly) penalized by the ranking.
/// * [`parse_step`](crate::parse_step) uses the canonical names to detect
///   propositions and actions.
///
/// Phrase matching is case-insensitive and longest-match-first.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    /// `(phrase, canonical proposition)` pairs, including the identity
    /// mapping for every canonical name.
    prop_phrases: Vec<(String, PropId)>,
    /// `(phrase, canonical action)` pairs.
    act_phrases: Vec<(String, ActId)>,
    /// Canonical proposition names, indexed by `PropId`.
    prop_names: Vec<String>,
    /// Canonical action names, indexed by `ActId`.
    act_names: Vec<String>,
}

fn normalize(text: &str) -> String {
    let lowered = text.to_lowercase();
    let mut out = String::with_capacity(lowered.len());
    for c in lowered.chars() {
        if c.is_ascii_alphanumeric() || c == ' ' || c == '-' {
            out.push(if c == '-' { ' ' } else { c });
        } else if c == ',' {
            out.push_str(" , ");
        } else {
            out.push(' ');
        }
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl Lexicon {
    /// Creates an empty lexicon over a vocabulary; every canonical name
    /// maps to itself.
    pub fn new(vocab: &Vocab) -> Self {
        let mut lex = Lexicon::default();
        for p in vocab.props() {
            let name = vocab.prop_name(p).to_owned();
            lex.prop_phrases.push((name.clone(), p));
            lex.prop_names.push(name);
        }
        for a in vocab.acts() {
            let name = vocab.act_name(a).to_owned();
            lex.act_phrases.push((name.clone(), a));
            lex.act_names.push(name);
        }
        lex.sort();
        lex
    }

    /// Registers a paraphrase for a proposition.
    pub fn add_prop_phrase(&mut self, phrase: &str, prop: PropId) {
        self.prop_phrases.push((normalize(phrase), prop));
        self.sort();
    }

    /// Registers a paraphrase for an action.
    pub fn add_act_phrase(&mut self, phrase: &str, act: ActId) {
        self.act_phrases.push((normalize(phrase), act));
        self.sort();
    }

    fn sort(&mut self) {
        // Longest phrase first so greedy matching prefers specific
        // paraphrases ("green left-turn light" over "green light").
        self.prop_phrases
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        self.act_phrases
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
    }

    /// The canonical name of a proposition.
    pub fn prop_name(&self, p: PropId) -> &str {
        &self.prop_names[p.index()]
    }

    /// The canonical name of an action.
    pub fn act_name(&self, a: ActId) -> &str {
        &self.act_names[a.index()]
    }

    /// Scans `text` for the longest proposition phrase starting at word
    /// boundary positions; returns all matches in order with their word
    /// offsets.
    pub(crate) fn find_props(&self, text: &str) -> Vec<(usize, PropId)> {
        self.find(text, &self.prop_phrases)
    }

    /// Scans `text` for action phrases.
    pub(crate) fn find_acts(&self, text: &str) -> Vec<(usize, ActId)> {
        self.find(text, &self.act_phrases)
    }

    fn find<T: Copy>(&self, text: &str, phrases: &[(String, T)]) -> Vec<(usize, T)> {
        let norm = normalize(text);
        let words: Vec<&str> = norm.split(' ').collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let mut matched = None;
            for (phrase, id) in phrases {
                let plen = phrase.split(' ').count();
                if i + plen <= words.len() && words[i..i + plen].join(" ") == *phrase {
                    matched = Some((plen, *id));
                    break; // longest-first ordering makes this greedy
                }
            }
            if let Some((plen, id)) = matched {
                out.push((i, id));
                i += plen;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Rewrites every recognized paraphrase in `text` to its canonical
    /// name — the alignment stage. Unrecognized words pass through
    /// unchanged (and may later fail parsing, which is the intended
    /// penalty signal).
    ///
    /// # Example
    ///
    /// ```
    /// use autokit::presets::DrivingDomain;
    /// use glm2fsa::Lexicon;
    ///
    /// let d = DrivingDomain::new();
    /// let lex = Lexicon::driving(&d);
    /// assert_eq!(
    ///     lex.align("If there is no oncoming traffic, make a right turn."),
    ///     "if there is no opposite car , turn right"
    /// );
    /// ```
    pub fn align(&self, text: &str) -> String {
        let norm = normalize(text);
        let words: Vec<&str> = norm.split(' ').collect();
        let mut out: Vec<String> = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let mut matched = None;
            for (phrase, id) in &self.prop_phrases {
                let plen = phrase.split(' ').count();
                if i + plen <= words.len() && words[i..i + plen].join(" ") == *phrase {
                    matched = Some((plen, self.prop_name(*id).to_owned()));
                    break;
                }
            }
            if matched.is_none() {
                for (phrase, id) in &self.act_phrases {
                    let plen = phrase.split(' ').count();
                    if i + plen <= words.len() && words[i..i + plen].join(" ") == *phrase {
                        matched = Some((plen, self.act_name(*id).to_owned()));
                        break;
                    }
                }
            }
            match matched {
                Some((plen, canonical)) => {
                    out.push(canonical);
                    i += plen;
                }
                None => {
                    out.push(words[i].to_owned());
                    i += 1;
                }
            }
        }
        out.join(" ")
    }

    /// The full paraphrase dictionary for the paper's autonomous-driving
    /// domain.
    pub fn driving(d: &DrivingDomain) -> Lexicon {
        let mut lex = Lexicon::new(&d.vocab);
        // --- observations -------------------------------------------------
        for phrase in [
            "green light",
            "light is green",
            "light turns green",
            "traffic light turns green",
            "the signal is green",
            "green signal",
        ] {
            lex.add_prop_phrase(phrase, d.green_tl);
        }
        for phrase in [
            "green left turn light",
            "left turn light is green",
            "green arrow",
            "protected left turn signal",
            "left turn signal is green",
            // Bare mentions resolve to the green phase; the parser's
            // negation detection turns "left turn light is not green"
            // into the ¬green literal.
            "left turn light",
            "left turn signal",
        ] {
            lex.add_prop_phrase(phrase, d.green_ll);
        }
        // Likewise for the main light: "the traffic light turns green" is
        // covered by the longer phrases above; a bare "traffic light" is
        // an observation target for its green phase.
        lex.add_prop_phrase("traffic light", d.green_tl);
        for phrase in [
            "flashing left turn light",
            "flashing arrow",
            "flashing yellow arrow",
        ] {
            lex.add_prop_phrase(phrase, d.flashing_ll);
        }
        for phrase in [
            "oncoming traffic",
            "oncoming car",
            "oncoming vehicle",
            "opposite vehicle",
            "car in the opposite direction",
            "traffic from the opposite direction",
        ] {
            lex.add_prop_phrase(phrase, d.opposite_car);
        }
        for phrase in [
            "car from the left",
            "car approaching from the left",
            "left approaching car",
            "traffic from your left",
            "traffic coming from your left",
            "traffic from the left",
            "vehicle on your left",
            "car on the left",
        ] {
            lex.add_prop_phrase(phrase, d.car_left);
        }
        for phrase in [
            "car from the right",
            "car approaching from the right",
            "right approaching car",
            "traffic from your right",
            "traffic from the right",
            "vehicle on your right",
            "car on the right",
        ] {
            lex.add_prop_phrase(phrase, d.car_right);
        }
        for phrase in [
            "pedestrian on the left",
            "pedestrian at your left",
            "left side pedestrian",
            "person on the left",
        ] {
            lex.add_prop_phrase(phrase, d.ped_left);
        }
        for phrase in [
            "pedestrian on the right",
            "pedestrian at your right",
            "right side pedestrian",
            "pedestrians on your right",
            "person on the right",
        ] {
            lex.add_prop_phrase(phrase, d.ped_right);
        }
        for phrase in [
            "pedestrian ahead",
            "pedestrian in the crosswalk",
            "person crossing",
            "pedestrian crossing in front",
            "crosswalk is occupied",
        ] {
            lex.add_prop_phrase(phrase, d.ped_front);
        }
        for phrase in ["stop sign ahead", "the stop sign"] {
            lex.add_prop_phrase(phrase, d.stop_sign);
        }
        // --- actions ------------------------------------------------------
        for phrase in [
            "come to a stop",
            "come to a complete stop",
            "halt",
            "wait",
            "brake",
            "remain stopped",
        ] {
            lex.add_act_phrase(phrase, d.stop);
        }
        for phrase in [
            "make a left turn",
            "turn your vehicle left",
            "take a left",
            "turn to the left",
        ] {
            lex.add_act_phrase(phrase, d.turn_left);
        }
        for phrase in [
            "make a right turn",
            "turn your vehicle right",
            "take a right",
            "turn to the right",
        ] {
            lex.add_act_phrase(phrase, d.turn_right);
        }
        for phrase in [
            "proceed straight",
            "drive forward",
            "start moving forward",
            "move forward",
            "continue straight",
            "proceed through the intersection",
            "drive through the intersection",
            "cross the intersection",
        ] {
            lex.add_act_phrase(phrase, d.go_straight);
        }
        lex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> (DrivingDomain, Lexicon) {
        let d = DrivingDomain::new();
        let l = Lexicon::driving(&d);
        (d, l)
    }

    #[test]
    fn canonical_names_map_to_themselves() {
        let (d, l) = lex();
        let found = l.find_props("green traffic light");
        assert_eq!(found, vec![(0, d.green_tl)]);
        let found = l.find_acts("turn right");
        assert_eq!(found, vec![(0, d.turn_right)]);
    }

    #[test]
    fn paraphrases_resolve() {
        let (d, l) = lex();
        assert_eq!(l.find_props("oncoming traffic"), vec![(0, d.opposite_car)]);
        assert_eq!(
            l.find_props("car approaching from the left"),
            vec![(0, d.car_left)]
        );
        assert_eq!(l.find_acts("make a right turn"), vec![(0, d.turn_right)]);
        assert_eq!(l.find_acts("come to a complete stop"), vec![(0, d.stop)]);
    }

    #[test]
    fn longest_match_wins() {
        let (d, l) = lex();
        // "green left-turn light" must not match as "…green…light".
        let found = l.find_props("green left-turn light");
        assert_eq!(found, vec![(0, d.green_ll)]);
    }

    #[test]
    fn multiple_matches_in_order() {
        let (d, l) = lex();
        let found = l.find_props("check the car from the left and the pedestrian on the right");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].1, d.car_left);
        assert_eq!(found[1].1, d.ped_right);
        assert!(found[0].0 < found[1].0);
    }

    #[test]
    fn align_rewrites_to_canonical() {
        let (_, l) = lex();
        assert_eq!(
            l.align("Wait for oncoming traffic to clear, then make a left turn."),
            "stop for opposite car to clear , then turn left"
        );
        // Unknown words pass through.
        assert_eq!(l.align("do a barrel roll"), "do a barrel roll");
    }

    #[test]
    fn normalization_strips_case_and_punctuation() {
        let (d, l) = lex();
        assert_eq!(
            l.find_props("ONCOMING   Traffic!!!"),
            vec![(0, d.opposite_car)]
        );
    }

    #[test]
    fn case_insensitive_hyphen_handling() {
        let (d, l) = lex();
        assert_eq!(l.find_props("Green Left-Turn Light"), vec![(0, d.green_ll)]);
    }
}
