use std::fmt;

/// Errors from controller synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The response contained no steps at all.
    EmptyStepList,
    /// A step could not be parsed against the lexicon.
    ///
    /// In the paper's pipeline this is an *alignment failure*: the
    /// language model produced phrasing that cannot be mapped onto the
    /// defined propositions and actions. DPO-AF explicitly counts reducing
    /// these failures among its fine-tuning goals (Section 4.1, property 1).
    UnparsableStep {
        /// Zero-based index of the offending step.
        index: usize,
        /// The raw step text.
        text: String,
        /// Why parsing failed.
        reason: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::EmptyStepList => write!(f, "response contained no steps"),
            SynthesisError::UnparsableStep {
                index,
                text,
                reason,
            } => write!(
                f,
                "step {} (`{}`) failed to align: {}",
                index + 1,
                text,
                reason
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}
