use crate::Lexicon;
use autokit::{ActSet, Guard, PropSet};
use serde::{Deserialize, Serialize};

/// What a step does once its guard is met.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// The step only gathers information (`observe`, `check`, `watch`, …).
    /// The set records which propositions the step attends to; the
    /// controller emits no action (`ε`).
    Observe(PropSet),
    /// The step performs actions.
    Act(ActSet),
}

/// One semantically parsed step: a literal guard plus the step's effect.
///
/// `<if> <no car from left>, <turn right>` parses to
/// `guard = ¬car_from_left`, `kind = Act({turn right})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedStep {
    /// Condition under which the step fires (`⊤` for unconditional steps).
    pub guard: Guard,
    /// The step's effect.
    pub kind: StepKind,
}

const CONDITIONAL_MARKERS: [&str; 2] = ["if", "when"];
const OBSERVE_VERBS: [&str; 9] = [
    "observe", "check", "look", "watch", "verify", "monitor", "scan", "confirm", "approach",
];
const NEGATION_WORDS: [&str; 7] = ["no", "not", "without", "clear", "free", "absent", "isnt"];

/// Parses one step of a response into a [`ParsedStep`].
///
/// The text is aligned against the lexicon first, so paraphrases are
/// accepted. Grammar (after alignment):
///
/// * `if/when <literals> , <clause>` — a guarded step. Literals are
///   `and`-separated proposition mentions, negated by `no`/`not`/
///   `without`/`clear`/`free`/`absent` within the same segment.
/// * `<clause>` — an unconditional step.
/// * A clause is an **action** if it mentions any action phrase (the
///   first mentioned action wins), otherwise an **observation** if it
///   contains an observe verb or proposition mentions.
///
/// # Errors
///
/// Returns a human-readable reason when the step has no recognizable verb
/// phrase — the paper's "failed to align" case.
pub fn parse_step(text: &str, lexicon: &Lexicon) -> Result<ParsedStep, String> {
    let aligned = lexicon.align(strip_numbering(text));
    if aligned.is_empty() {
        return Err("empty step".to_owned());
    }
    let words: Vec<&str> = aligned.split(' ').collect();

    if CONDITIONAL_MARKERS.contains(&words[0]) {
        // Split condition from consequent at the first comma or `then`.
        let split = words
            .iter()
            .position(|w| *w == "," || *w == "then")
            .ok_or_else(|| "conditional step has no consequent clause".to_owned())?;
        let condition = words[1..split].join(" ");
        let mut consequent_words = &words[split + 1..];
        if consequent_words.first() == Some(&"then") {
            consequent_words = &consequent_words[1..];
        }
        let consequent = consequent_words.join(" ");
        if consequent.trim().is_empty() {
            return Err("conditional step has an empty consequent".to_owned());
        }
        let guard = parse_condition(&condition, lexicon)?;
        let kind = parse_clause(&consequent, lexicon)?;
        Ok(ParsedStep { guard, kind })
    } else {
        let kind = parse_clause(&aligned, lexicon)?;
        Ok(ParsedStep {
            guard: Guard::always(),
            kind,
        })
    }
}

/// Strips leading list numbering like `3.` or `2)`.
fn strip_numbering(text: &str) -> &str {
    let trimmed = text.trim_start();
    let after_digits = trimmed.trim_start_matches(|c: char| c.is_ascii_digit());
    if after_digits.len() != trimmed.len() {
        after_digits
            .strip_prefix(['.', ')'])
            .unwrap_or(after_digits)
            .trim_start()
    } else {
        trimmed
    }
}

/// Parses an `and`-separated literal conjunction into a [`Guard`].
fn parse_condition(condition: &str, lexicon: &Lexicon) -> Result<Guard, String> {
    let mut guard = Guard::always();
    let mut any = false;
    for segment in condition.split(" and ") {
        let props = lexicon.find_props(segment);
        if props.is_empty() {
            // Segments without a proposition mention ("it is safe") add no
            // literal; a condition that mentions nothing at all is an
            // alignment failure.
            continue;
        }
        let negated = segment.split(' ').any(|w| NEGATION_WORDS.contains(&w));
        for (_, p) in props {
            if negated {
                guard = guard.forbids(p);
            } else {
                guard = guard.requires(p);
            }
            any = true;
        }
    }
    if !any {
        return Err(format!(
            "condition `{condition}` mentions no known proposition"
        ));
    }
    Ok(guard)
}

/// Parses a clause into an action or an observation.
fn parse_clause(clause: &str, lexicon: &Lexicon) -> Result<StepKind, String> {
    let acts = lexicon.find_acts(clause);
    if let Some(&(_, first)) = acts.first() {
        // The first mentioned action wins ("wait for traffic to clear
        // before turning left" → stop, not turn-left).
        return Ok(StepKind::Act(ActSet::singleton(first)));
    }
    let has_observe_verb = clause.split(' ').any(|w| OBSERVE_VERBS.contains(&w));
    let props: PropSet = lexicon
        .find_props(clause)
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    if has_observe_verb || !props.is_empty() {
        return Ok(StepKind::Observe(props));
    }
    Err(format!(
        "clause `{clause}` contains no recognizable action or observation"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::presets::DrivingDomain;

    fn setup() -> (DrivingDomain, Lexicon) {
        let d = DrivingDomain::new();
        let l = Lexicon::driving(&d);
        (d, l)
    }

    #[test]
    fn strip_numbering_variants() {
        assert_eq!(strip_numbering("3. Turn right."), "Turn right.");
        assert_eq!(strip_numbering("12) go"), "go");
        assert_eq!(strip_numbering("  1. x"), "x");
        assert_eq!(strip_numbering("turn"), "turn");
    }

    #[test]
    fn unconditional_action() {
        let (d, l) = setup();
        let step = parse_step("Turn right.", &l).unwrap();
        assert_eq!(step.guard, Guard::always());
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.turn_right)));
    }

    #[test]
    fn unconditional_observation() {
        let (d, l) = setup();
        let step = parse_step("Observe the state of the green traffic light.", &l).unwrap();
        assert_eq!(step.guard, Guard::always());
        assert_eq!(step.kind, StepKind::Observe(PropSet::singleton(d.green_tl)));
    }

    #[test]
    fn conditional_with_positive_literal() {
        let (d, l) = setup();
        let step = parse_step(
            "If the green traffic light is on, execute the action go straight.",
            &l,
        )
        .unwrap();
        assert_eq!(step.guard, Guard::always().requires(d.green_tl));
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.go_straight)));
    }

    #[test]
    fn conditional_with_negative_literals() {
        let (d, l) = setup();
        let step = parse_step(
            "If no car from the left and no pedestrian at your right, turn right.",
            &l,
        )
        .unwrap();
        assert_eq!(
            step.guard,
            Guard::always().forbids(d.car_left).forbids(d.ped_right)
        );
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.turn_right)));
    }

    #[test]
    fn conditional_consequent_can_observe() {
        let (d, l) = setup();
        let step = parse_step(
            "If the car from left is not present, check the state of the pedestrian at right.",
            &l,
        )
        .unwrap();
        assert_eq!(step.guard, Guard::always().forbids(d.car_left));
        assert_eq!(
            step.kind,
            StepKind::Observe(PropSet::singleton(d.ped_right))
        );
    }

    #[test]
    fn when_is_a_conditional_marker() {
        let (d, l) = setup();
        let step = parse_step("When the left turn signal is green, turn left.", &l).unwrap();
        assert_eq!(step.guard, Guard::always().requires(d.green_ll));
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.turn_left)));
    }

    #[test]
    fn first_action_wins_in_complex_clauses() {
        let (d, l) = setup();
        // "wait" (→ stop) comes before the left turn.
        let step = parse_step(
            "Wait for oncoming traffic to clear before you turn left.",
            &l,
        )
        .unwrap();
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.stop)));
    }

    #[test]
    fn paraphrased_steps_align() {
        let (d, l) = setup();
        let step = parse_step("If there is no oncoming traffic, make a left turn.", &l).unwrap();
        assert_eq!(step.guard, Guard::always().forbids(d.opposite_car));
        assert_eq!(step.kind, StepKind::Act(ActSet::singleton(d.turn_left)));
    }

    #[test]
    fn vacuous_condition_segments_are_skipped() {
        let (d, l) = setup();
        let step = parse_step("If it is safe and no car from the left, turn right.", &l).unwrap();
        assert_eq!(step.guard, Guard::always().forbids(d.car_left));
    }

    #[test]
    fn unparsable_steps_error() {
        let (_, l) = setup();
        assert!(parse_step("Do a barrel roll.", &l).is_err());
        assert!(parse_step("If the moon is full, howl.", &l).is_err());
        assert!(parse_step("If no car from the left", &l).is_err());
        assert!(parse_step("", &l).is_err());
    }

    #[test]
    fn condition_without_known_props_errors() {
        let (_, l) = setup();
        let err = parse_step("If it is safe, turn right.", &l).unwrap_err();
        assert!(err.contains("no known proposition"), "{err}");
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics, whatever the input.
            #[test]
            fn parse_step_total_on_arbitrary_text(text in ".{0,120}") {
                let (_, l) = setup();
                let _ = parse_step(&text, &l);
            }

            /// Word salad over the domain vocabulary never panics and,
            /// when it parses, yields a structurally sound step.
            #[test]
            fn parse_step_on_domain_word_salad(
                words in proptest::collection::vec(0usize..12, 0..20)
            ) {
                let lexicon_words = [
                    "if", "no", "the", "turn", "right", "left", "stop",
                    "green", "traffic", "light", ",", "observe",
                ];
                let text = words
                    .iter()
                    .map(|&i| lexicon_words[i])
                    .collect::<Vec<_>>()
                    .join(" ");
                let (_, l) = setup();
                if let Ok(step) = parse_step(&text, &l) {
                    // Guards never mix a literal positively and negatively.
                    prop_assert!(!step.guard.is_contradictory());
                }
            }

            /// Alignment is idempotent: aligning aligned text is a no-op.
            #[test]
            fn align_idempotent(text in "[a-z ]{0,80}") {
                let (_, l) = setup();
                let once = l.align(&text);
                let twice = l.align(&once);
                prop_assert_eq!(once, twice);
            }
        }
    }
}
