use crate::{ParsedStep, StepKind};
use autokit::{ActId, ActSet, Controller, ControllerBuilder};
use serde::{Deserialize, Serialize};

/// Where the controller goes after its final step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OnComplete {
    /// Loop back to the first step — the task repeats (an intersection is
    /// handled, the next one comes up). This yields the infinite
    /// behaviours LTL model checking is defined over and is the default.
    #[default]
    Restart,
    /// Stay in the final state forever (self-loop with `ε`).
    SelfLoop,
}

/// Options for FSA construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FsaOptions {
    /// Behaviour after the last step.
    pub on_complete: OnComplete,
    /// Actions whose conditional steps are *reactive* rather than
    /// *blocking*: when the guard of a step emitting one of these actions
    /// is false, the controller moves on to the next step instead of
    /// waiting.
    ///
    /// `"if the light is not green, stop"` is reactive — when the light
    /// *is* green the instruction simply does not apply and the next step
    /// takes over. `"if the way is clear, turn right"` is blocking — the
    /// vehicle waits for the way to clear. Driving pipelines pass
    /// `{stop}` here.
    pub non_blocking: ActSet,
}

/// Builds an FSA controller from parsed steps, following GLM2FSA: one
/// state per step (the first is initial); a step's transition fires when
/// its guard matches, emitting the step's action (or `ε` for
/// observations). When the guard is false, blocking steps **wait** (stay
/// in place with `ε`) while steps emitting a
/// [`non_blocking`](FsaOptions::non_blocking) action **skip** to the next
/// step.
///
/// # Example
///
/// ```
/// use autokit::{presets::DrivingDomain, ActSet, Guard, PropSet};
/// use glm2fsa::{build_controller, FsaOptions, ParsedStep, StepKind};
///
/// let d = DrivingDomain::new();
/// let steps = [
///     ParsedStep {
///         guard: Guard::always(),
///         kind: StepKind::Observe(PropSet::singleton(d.green_tl)),
///     },
///     ParsedStep {
///         guard: Guard::always().requires(d.green_tl),
///         kind: StepKind::Act(ActSet::singleton(d.go_straight)),
///     },
/// ];
/// let ctrl = build_controller("cross", &steps, FsaOptions::default());
/// assert_eq!(ctrl.num_states(), 2);
/// assert_eq!(ctrl.initial(), 0);
/// ```
pub fn build_controller(name: &str, steps: &[ParsedStep], options: FsaOptions) -> Controller {
    let n = steps.len().max(1);
    let mut builder = ControllerBuilder::new(name, n).initial(0);
    for (i, step) in steps.iter().enumerate() {
        let next = if i + 1 < n {
            i + 1
        } else {
            match options.on_complete {
                OnComplete::Restart => 0,
                OnComplete::SelfLoop => i,
            }
        };
        let action = match step.kind {
            StepKind::Observe(_) => ActSet::empty(),
            StepKind::Act(a) => a,
        };
        builder = builder.transition(i, step.guard, action, next);
        // Else-branch: one transition per negated literal of the guard.
        // Reactive (non-blocking-action) steps skip to the next step;
        // everything else waits in place.
        let reactive = matches!(step.kind, StepKind::Act(a)
            if !a.is_empty() && options.non_blocking.is_superset(a));
        let else_target = if reactive { next } else { i };
        for neg in step.guard.negation() {
            builder = builder.transition(i, neg, ActSet::empty(), else_target);
        }
    }
    #[allow(clippy::expect_used)] // ALLOW: indices are in range by construction
    builder
        .build()
        .expect("construction is structurally valid by construction")
}

/// Returns a copy of `ctrl` whose `ε` (empty) actions are replaced by
/// `default`.
///
/// The paper's NuSMV encodings (Appendix D) give the vehicle an action in
/// *every* step — a controller that is observing is a controller that is
/// stopped. Applying `with_default_action(ctrl, stop)` before verification
/// reproduces that encoding; specifications like Φ₆ (*"always commit to
/// some action"*) are unsatisfiable without it.
pub fn with_default_action(ctrl: &Controller, default: ActId) -> Controller {
    let mut builder =
        ControllerBuilder::new(ctrl.name(), ctrl.num_states()).initial(ctrl.initial());
    for t in ctrl.transitions() {
        let action = if t.action.is_empty() {
            ActSet::singleton(default)
        } else {
            t.action
        };
        builder = builder.transition(t.from, t.guard, action, t.to);
    }
    #[allow(clippy::expect_used)] // ALLOW: copies a valid controller's shape
    builder.build().expect("same shape as a valid controller")
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::presets::DrivingDomain;
    use autokit::{Guard, PropSet};

    fn steps(d: &DrivingDomain) -> Vec<ParsedStep> {
        vec![
            ParsedStep {
                guard: Guard::always(),
                kind: StepKind::Observe(PropSet::singleton(d.green_tl)),
            },
            ParsedStep {
                guard: Guard::always().requires(d.green_tl),
                kind: StepKind::Act(ActSet::singleton(d.go_straight)),
            },
            ParsedStep {
                guard: Guard::always().forbids(d.car_left).forbids(d.ped_right),
                kind: StepKind::Act(ActSet::singleton(d.turn_right)),
            },
        ]
    }

    #[test]
    fn one_state_per_step() {
        let d = DrivingDomain::new();
        let ctrl = build_controller("t", &steps(&d), FsaOptions::default());
        assert_eq!(ctrl.num_states(), 3);
        assert_eq!(ctrl.initial(), 0);
    }

    #[test]
    fn restart_loops_to_initial() {
        let d = DrivingDomain::new();
        let ctrl = build_controller("t", &steps(&d), FsaOptions::default());
        let last_main = ctrl
            .transitions()
            .iter()
            .find(|t| t.from == 2 && !t.action.is_empty())
            .unwrap();
        assert_eq!(last_main.to, 0);
    }

    #[test]
    fn self_loop_option() {
        let d = DrivingDomain::new();
        let ctrl = build_controller(
            "t",
            &steps(&d),
            FsaOptions {
                on_complete: OnComplete::SelfLoop,
                ..FsaOptions::default()
            },
        );
        let last_main = ctrl
            .transitions()
            .iter()
            .find(|t| t.from == 2 && !t.action.is_empty())
            .unwrap();
        assert_eq!(last_main.to, 2);
    }

    #[test]
    fn guarded_steps_wait() {
        let d = DrivingDomain::new();
        let ctrl = build_controller("t", &steps(&d), FsaOptions::default());
        // Step 1 (requires green): when ¬green, a wait self-loop exists.
        let sigma_red = PropSet::empty();
        let enabled: Vec<_> = ctrl.enabled(1, sigma_red).collect();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].to, 1);
        assert!(enabled[0].action.is_empty());
        // When green, the main transition fires.
        let sigma_green = PropSet::singleton(d.green_tl);
        let enabled: Vec<_> = ctrl.enabled(1, sigma_green).collect();
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].to, 2);
    }

    #[test]
    fn no_deadlock_under_any_observation() {
        let d = DrivingDomain::new();
        let ctrl = build_controller("t", &steps(&d), FsaOptions::default());
        // The guard + its negation disjuncts cover every symbol.
        for bits in 0..(1u32 << d.vocab.num_props()) {
            let sigma = PropSet::from_bits(bits);
            for q in 0..ctrl.num_states() {
                assert!(ctrl.has_enabled(q, sigma), "deadlock at q{q}, σ={bits:b}");
            }
        }
    }

    #[test]
    fn default_action_replaces_epsilon_only() {
        let d = DrivingDomain::new();
        let ctrl = build_controller("t", &steps(&d), FsaOptions::default());
        let mapped = with_default_action(&ctrl, d.stop);
        assert_eq!(mapped.num_states(), ctrl.num_states());
        for t in mapped.transitions() {
            assert!(!t.action.is_empty());
        }
        // Real actions are preserved.
        assert!(mapped
            .transitions()
            .iter()
            .any(|t| t.action.contains(d.turn_right)));
        assert!(mapped
            .transitions()
            .iter()
            .any(|t| t.action.contains(d.go_straight)));
    }

    #[test]
    fn non_blocking_action_steps_skip_instead_of_wait() {
        let d = DrivingDomain::new();
        // "if ¬green, stop" as a reactive step, then "if green, turn".
        let steps = [
            ParsedStep {
                guard: Guard::always().forbids(d.green_ll),
                kind: StepKind::Act(ActSet::singleton(d.stop)),
            },
            ParsedStep {
                guard: Guard::always().requires(d.green_ll),
                kind: StepKind::Act(ActSet::singleton(d.turn_left)),
            },
        ];
        let opts = FsaOptions {
            non_blocking: ActSet::singleton(d.stop),
            ..FsaOptions::default()
        };
        let ctrl = build_controller("left turn", &steps, opts);
        // When the light is green at q0, the reactive stop-step SKIPS to
        // q1 (no waiting while green).
        let green = PropSet::singleton(d.green_ll);
        let at_q0: Vec<_> = ctrl.enabled(0, green).collect();
        assert_eq!(at_q0.len(), 1);
        assert_eq!(at_q0[0].to, 1);
        assert!(at_q0[0].action.is_empty());
        // The blocking turn-step still waits while the light is red.
        let red = PropSet::empty();
        let at_q1: Vec<_> = ctrl.enabled(1, red).collect();
        assert_eq!(at_q1.len(), 1);
        assert_eq!(at_q1[0].to, 1);
    }

    #[test]
    fn empty_step_list_yields_single_idle_state() {
        let ctrl = build_controller("idle", &[], FsaOptions::default());
        assert_eq!(ctrl.num_states(), 1);
        assert!(ctrl.transitions().is_empty());
    }
}
