//! The schedule explorer: bounded-preemption DFS over the scheduling
//! tree with sleep-set pruning, plus deterministic replay from a
//! schedule id.
//!
//! Exploration is **re-execution based** (in the CHESS lineage): the
//! model body runs once per schedule, the runtime records the choice
//! made and the set of enabled threads (with their pending operations)
//! at every scheduling point, and the explorer backtracks to the
//! deepest point with an untried alternative. Two prunings keep the
//! tree manageable:
//!
//! * **Preemption bound.** Switching away from a thread that could have
//!   kept running costs one preemption; schedules with more than
//!   [`Config::preemption_bound`] preemptions are not explored. Forced
//!   switches (the running thread blocked or finished) are free, so
//!   every *blocking* interleaving is still reached. Empirically, small
//!   bounds (2–3) find almost all real concurrency bugs.
//! * **Sleep sets.** After the subtree for choice `t` at a node is
//!   exhausted, `t` goes to sleep at that node; sibling subtrees skip
//!   any sleeping thread whose pending operation is independent of
//!   every operation executed since (same-object test on the declared
//!   ops). This prunes schedules that are Mazurkiewicz-equivalent to
//!   ones already explored, and never hides a deadlock or assertion
//!   failure.
//!
//! Object ids inside a trace are canonicalized by order of first
//! appearance before independence tests, so they are stable across
//! executions of a deterministic body even though the runtime allocates
//! process-unique raw ids.

use crate::rt::{self, Exec, Op, StepInfo, Violation};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum preemptions per schedule (`None` = unbounded — full DFS).
    pub preemption_bound: Option<usize>,
    /// Maximum schedules to explore before giving up (the report is then
    /// marked incomplete).
    pub max_schedules: u64,
    /// Maximum scheduling points in a single execution (runaway guard;
    /// exceeding it is reported as [`Violation::StepLimit`]).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 200_000,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// A config with the given preemption bound and default budgets.
    pub fn with_bound(bound: usize) -> Config {
        Config {
            preemption_bound: Some(bound),
            ..Config::default()
        }
    }
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules (complete executions) explored.
    pub schedules: u64,
    /// Total scheduling points across all executions.
    pub steps: u64,
    /// Deepest schedule seen (scheduling points in one execution).
    pub max_depth: usize,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// Whether the bounded schedule space was exhausted. `false` when
    /// the `max_schedules` budget ran out first.
    pub complete: bool,
}

impl Report {
    /// Panics with a replay-ready message when a violation was found or
    /// the exploration did not exhaust its bounded schedule space.
    ///
    /// # Panics
    ///
    /// See above — this is the assertion helper model tests call.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "conckit violation after {} schedule(s): {v:?}\n\
                 replay with conckit::replay(&config, {:?}, body)",
                self.schedules,
                v.schedule_id()
            );
        }
        assert!(
            self.complete,
            "exploration incomplete: schedule budget exhausted after {} schedules",
            self.schedules
        );
    }
}

/// `(canonical object, writes)` — the independence key of an op.
type OpKey = (Option<u64>, bool);

/// Two ops commute iff they touch different objects, or the same object
/// read-only. Ops with no object (spawn/join/start/yield) are global:
/// dependent with everything.
fn independent(a: OpKey, b: OpKey) -> bool {
    match (a.0, b.0) {
        (Some(x), Some(y)) => x != y || (!a.1 && !b.1),
        _ => false,
    }
}

/// One node on the DFS stack (a scheduling point along the current
/// schedule prefix).
struct Frame {
    /// Enabled threads and their pending-op keys at this point.
    enabled: Vec<(usize, OpKey)>,
    /// The thread holding the turn when the decision was made, and
    /// whether it was enabled (preemption accounting).
    yielder: usize,
    yielder_enabled: bool,
    /// Choices already fully explored from this node.
    tried: Vec<usize>,
    /// Sleeping threads (with op keys): skipped as candidates.
    sleep: Vec<(usize, OpKey)>,
    /// The choice the current path takes at this node.
    chosen: usize,
    /// Preemptions consumed strictly before this node.
    preemptions_before: usize,
}

/// Canonicalizes raw object ids by order of first appearance in the
/// trace, so op keys are comparable across executions.
fn canonical_keys(trace: &[StepInfo]) -> Vec<Vec<(usize, OpKey)>> {
    let mut ids: HashMap<u64, u64> = HashMap::new();
    let mut next = 0u64;
    let mut canon = |op: Op| -> OpKey {
        let (obj, write) = op.key();
        let obj = obj.map(|raw| {
            *ids.entry(raw).or_insert_with(|| {
                next += 1;
                next
            })
        });
        (obj, write)
    };
    trace
        .iter()
        .map(|step| step.enabled.iter().map(|&(t, op)| (t, canon(op))).collect())
        .collect()
}

fn op_key_of(keys: &[(usize, OpKey)], tid: usize) -> OpKey {
    keys.iter()
        .find(|&&(t, _)| t == tid)
        .map(|&(_, k)| k)
        .unwrap_or((None, true))
}

struct Explorer {
    frames: Vec<Frame>,
    bound: Option<usize>,
}

impl Explorer {
    /// Extends the frame stack with the steps of a fresh execution
    /// beyond the prescribed prefix.
    fn integrate(&mut self, trace: &[StepInfo]) {
        let keys = canonical_keys(trace);
        for depth in self.frames.len()..trace.len() {
            let step = &trace[depth];
            // Child sleep set: parent's sleeping threads whose op is
            // independent of the op the parent's chosen edge executed.
            let sleep = if depth == 0 {
                Vec::new()
            } else {
                let parent_chosen_key = op_key_of(&keys[depth - 1], trace[depth - 1].chosen);
                self.frames[depth - 1]
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&(_, k)| independent(k, parent_chosen_key))
                    .collect()
            };
            let preemptions_before = if depth == 0 {
                0
            } else {
                let prev = &self.frames[depth - 1];
                let preempted = prev.yielder_enabled && prev.chosen != prev.yielder;
                prev.preemptions_before + usize::from(preempted)
            };
            self.frames.push(Frame {
                enabled: keys[depth].clone(),
                yielder: step.yielder,
                yielder_enabled: step.yielder_enabled,
                tried: vec![step.chosen],
                sleep,
                chosen: step.chosen,
                preemptions_before,
            });
        }
    }

    /// Backtracks to the deepest node with an untried, non-sleeping,
    /// bound-respecting alternative and redirects the path there.
    /// Returns the new prescribed prefix, or `None` when the bounded
    /// space is exhausted.
    fn backtrack(&mut self) -> Option<Vec<usize>> {
        while let Some(frame) = self.frames.last_mut() {
            // The just-finished choice goes to sleep at this node.
            let finished_key = op_key_of(&frame.enabled, frame.chosen);
            frame.sleep.push((frame.chosen, finished_key));
            let candidate = frame.enabled.iter().map(|&(t, _)| t).find(|&t| {
                if frame.tried.contains(&t) || frame.sleep.iter().any(|&(s, _)| s == t) {
                    return false;
                }
                let preemptive = frame.yielder_enabled && t != frame.yielder;
                match self.bound {
                    Some(b) => frame.preemptions_before + usize::from(preemptive) <= b,
                    None => true,
                }
            });
            match candidate {
                Some(t) => {
                    frame.tried.push(t);
                    frame.chosen = t;
                    return Some(self.frames.iter().map(|f| f.chosen).collect());
                }
                None => {
                    self.frames.pop();
                }
            }
        }
        None
    }
}

/// Runs the body once under the prescribed choice prefix. Returns the
/// recorded trace and the violation, if any.
fn run_once<F: Fn()>(
    prefix: Vec<usize>,
    max_steps: usize,
    body: &F,
) -> (Vec<StepInfo>, Option<Violation>) {
    let exec = Exec::new(prefix, max_steps);
    rt::set_current(Some((exec.clone(), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(body));
    match outcome {
        Ok(()) => exec.finish_thread(0),
        Err(payload) => {
            if !rt::is_abort(payload.as_ref()) {
                // The body itself panicked (assertion failure).
                exec.record_thread_panic(0, payload.as_ref());
            }
            // Mark main finished without scheduling so live-count
            // bookkeeping stays consistent during teardown.
            exec.finish_thread(0);
        }
    }
    exec.wait_all_done();
    rt::set_current(None);
    (exec.trace(), exec.violation())
}

/// Exhaustively explores the interleavings of `body` within the
/// configured bounds. Stops at the first violation.
///
/// The body must be deterministic apart from scheduling: same inputs,
/// no wall-clock or OS randomness. It runs once per schedule.
pub fn explore<F: Fn()>(config: &Config, body: F) -> Report {
    let mut explorer = Explorer {
        frames: Vec::new(),
        bound: config.preemption_bound,
    };
    let mut report = Report {
        schedules: 0,
        steps: 0,
        max_depth: 0,
        violation: None,
        complete: false,
    };
    let mut prefix = Vec::new();
    loop {
        let (trace, violation) = run_once(prefix, config.max_steps, &body);
        report.schedules += 1;
        report.steps += trace.len() as u64;
        report.max_depth = report.max_depth.max(trace.len());
        if violation.is_some() {
            report.violation = violation;
            return report;
        }
        explorer.integrate(&trace);
        match explorer.backtrack() {
            Some(next) => prefix = next,
            None => {
                report.complete = true;
                return report;
            }
        }
        if report.schedules >= config.max_schedules {
            return report;
        }
    }
}

/// Re-executes `body` under the exact schedule identified by `id`
/// (as carried by a [`Violation`]). Returns the violation the replayed
/// schedule produces, if any — deterministic bodies reproduce the
/// original one bit-for-bit.
pub fn replay<F: Fn()>(config: &Config, id: &str, body: F) -> Option<Violation> {
    let prefix = rt::decode_schedule(id)
        .unwrap_or_else(|| panic!("malformed schedule id {id:?} (expected v1:<base36 digits>)"));
    let (_trace, violation) = run_once(prefix, config.max_steps, &body);
    violation
}
