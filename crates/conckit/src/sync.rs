//! Synchronization shim: `std::sync` re-exports in normal builds, model
//! wrappers under the `model` feature.
//!
//! Code written against `conckit::sync` compiles to the real `std`
//! types (zero overhead, byte-for-byte the same API) unless the `model`
//! feature is on. With the feature, each type wraps its `std`
//! counterpart plus a lazily assigned model-object id; operations
//! declare themselves at a scheduler yield point first, then fall
//! through to the real primitive — which, because the scheduler admits
//! one runnable thread at a time, never actually contends. Outside an
//! active model execution (no thread-local execution installed) every
//! operation passes straight through to `std`, so `model`-built crates
//! still behave normally in ordinary tests.
//!
//! Model-build semantic deviations, all deliberate:
//!
//! * **Poisoning is not modeled** — `lock()` always returns `Ok` inside
//!   a model execution (panics unwind the whole execution as a
//!   violation instead). Outside an execution, real poisoning behaves
//!   as in `std`.
//! * **`wait_timeout` never times out** — the timeout backstop is
//!   modeled as never firing, so any protocol that needs it for
//!   progress deadlocks in the model. That is the lost-wakeup detector.
//! * **Atomics are sequentially consistent** — orderings are accepted
//!   and ignored; weak-memory reorderings are out of scope.
//! * **`notify_one` wakes the oldest waiter** (FIFO), a deterministic
//!   refinement of the unspecified `std` choice.

#[cfg(not(feature = "model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

// These are accurate under the model too: the model guard reuses
// `std::sync::PoisonError` so downstream poisoning-recovery code
// compiles identically in both builds.
pub use std::sync::{Arc, LockResult, PoisonError};

/// Atomic types and the `Ordering` enum. Under the model, operations
/// are scheduler yield points executed sequentially consistently.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(feature = "model"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(feature = "model")]
    pub use super::model::{AtomicBool, AtomicU64, AtomicUsize};
}

#[cfg(feature = "model")]
pub use model::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(feature = "model")]
mod model {
    use crate::rt::{self, Op};
    use std::sync::atomic::Ordering;
    use std::sync::{LockResult, OnceLock, PoisonError};
    use std::time::Duration;

    /// Lazily assigns this object's model id (const-constructible so
    /// statics work; the id is allocated at first use, deterministically
    /// under the single-runner discipline).
    #[derive(Debug, Default)]
    struct ObjectId(OnceLock<u64>);

    impl ObjectId {
        const fn new() -> ObjectId {
            ObjectId(OnceLock::new())
        }
        fn get(&self) -> u64 {
            *self.0.get_or_init(rt::new_object_id)
        }
    }

    /// Declares `op` at a scheduler yield point when the calling thread
    /// belongs to an active model execution; no-op otherwise.
    fn yield_op(op_of: impl FnOnce() -> Op) {
        if let Some((exec, me)) = rt::current() {
            exec.yield_op(me, op_of());
        }
    }

    /// A model mutex: `std::sync::Mutex` plus scheduling.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        id: ObjectId,
        inner: std::sync::Mutex<T>,
    }

    /// The guard returned by [`Mutex::lock`]; releasing it is a
    /// scheduler yield point.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T: ?Sized> {
        mutex: &'a Mutex<T>,
        // `Option` so `Condvar::wait` and `Drop` can release the real
        // guard before declaring the model unlock.
        guard: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates a new model mutex.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                id: ObjectId::new(),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex. A scheduler yield point: the model
        /// explores every admissible acquisition order.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if rt::current().is_some() {
                yield_op(|| Op::Lock(self.id.get()));
                // The scheduler guarantees the model holder is unique,
                // so the real lock is uncontended — unless the execution
                // is tearing down, in which case blocking on the real
                // lock is still correct (the holder is unwinding).
                let guard = match self.inner.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Ok(MutexGuard {
                    mutex: self,
                    guard: Some(guard),
                })
            } else {
                match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        mutex: self,
                        guard: Some(g),
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        mutex: self,
                        guard: Some(poisoned.into_inner()),
                    })),
                }
            }
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<'a, T: ?Sized> MutexGuard<'a, T> {
        fn real(&self) -> &std::sync::MutexGuard<'a, T> {
            self.guard
                .as_ref()
                .unwrap_or_else(|| unreachable!("guard accessed after release"))
        }
        fn real_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
            self.guard
                .as_mut()
                .unwrap_or_else(|| unreachable!("guard accessed after release"))
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.real()
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.real_mut()
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first, then declare the model
            // unlock; nobody else can run in between (we hold the turn).
            self.guard = None;
            yield_op(|| Op::Unlock(self.mutex.id.get()));
        }
    }

    /// Result of [`Condvar::wait_timeout`]: under the model the timeout
    /// never fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(());

    impl WaitTimeoutResult {
        /// Always `false` in the model (see the module docs).
        pub fn timed_out(&self) -> bool {
            false
        }
    }

    /// A model condition variable.
    #[derive(Debug, Default)]
    pub struct Condvar {
        id: ObjectId,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates a new model condvar.
        pub const fn new() -> Condvar {
            Condvar {
                id: ObjectId::new(),
                inner: std::sync::Condvar::new(),
            }
        }

        fn wait_model<'a, T: ?Sized>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            let mutex = guard.mutex;
            // Release the real lock, then park on the model condvar;
            // yield_op returns only after a notify re-ran our re-acquire
            // op, at which point re-taking the real lock cannot contend.
            guard.guard = None;
            let (cv, m) = (self.id.get(), mutex.id.get());
            yield_op(|| Op::Wait { cv, mutex: m });
            std::mem::forget(guard); // plain fields; Drop would re-unlock
            let real = match mutex.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            Ok(MutexGuard {
                mutex,
                guard: Some(real),
            })
        }

        /// Blocks until notified, releasing the mutex while parked. A
        /// missed notification parks this thread forever — which the
        /// explorer reports as a deadlock.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            if rt::current().is_some() {
                self.wait_model(guard)
            } else {
                let mutex = guard.mutex;
                let mut g = guard;
                let real = g
                    .guard
                    .take()
                    .unwrap_or_else(|| unreachable!("wait on released guard"));
                std::mem::forget(g);
                match self.inner.wait(real) {
                    Ok(r) => Ok(MutexGuard {
                        mutex,
                        guard: Some(r),
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        mutex,
                        guard: Some(p.into_inner()),
                    })),
                }
            }
        }

        /// [`Condvar::wait`] with a timeout. **Modeled as never timing
        /// out**: protocols that rely on the timeout for progress (a
        /// lost-wakeup backstop) deadlock under the model, on purpose.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            if rt::current().is_some() {
                match self.wait_model(guard) {
                    Ok(g) => Ok((g, WaitTimeoutResult(()))),
                    Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(())))),
                }
            } else {
                let mutex = guard.mutex;
                let mut g = guard;
                let real = g
                    .guard
                    .take()
                    .unwrap_or_else(|| unreachable!("wait on released guard"));
                std::mem::forget(g);
                match self.inner.wait_timeout(real, dur) {
                    Ok((r, _t)) => Ok((
                        MutexGuard {
                            mutex,
                            guard: Some(r),
                        },
                        WaitTimeoutResult(()),
                    )),
                    Err(p) => {
                        let (r, _t) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                mutex,
                                guard: Some(r),
                            },
                            WaitTimeoutResult(()),
                        )))
                    }
                }
            }
        }

        /// Wakes one waiter (the oldest). Dropped when nobody waits —
        /// the real-condvar semantics that produce lost wakeups.
        pub fn notify_one(&self) {
            yield_op(|| Op::NotifyOne(self.id.get()));
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            yield_op(|| Op::NotifyAll(self.id.get()));
            self.inner.notify_all();
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// A model atomic: every operation is a scheduler yield
            /// point, executed sequentially consistently.
            #[derive(Debug, Default)]
            pub struct $name {
                id: ObjectId,
                inner: $std,
            }

            impl $name {
                /// Creates a new model atomic.
                pub const fn new(v: $prim) -> $name {
                    $name {
                        id: ObjectId::new(),
                        inner: <$std>::new(v),
                    }
                }

                /// Atomic load (modeled as a read of this object).
                pub fn load(&self, _order: Ordering) -> $prim {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: false,
                    });
                    self.inner.load(Ordering::SeqCst)
                }

                /// Atomic store.
                pub fn store(&self, v: $prim, _order: Ordering) {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: true,
                    });
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Atomic swap.
                pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: true,
                    });
                    self.inner.swap(v, Ordering::SeqCst)
                }
            }
        };
    }

    macro_rules! model_atomic_arith {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: true,
                    });
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: true,
                    });
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Atomic compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_op(|| Op::Atomic {
                        obj: self.id.get(),
                        write: true,
                    });
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic_arith!(AtomicUsize, usize);
    model_atomic_arith!(AtomicU64, u64);
}
