//! Thread shim: `std::thread` re-exports in normal builds, model-thread
//! spawning under the `model` feature.
//!
//! Inside a model execution, `spawn`/`Builder::spawn` register a new
//! model thread with the scheduler: the closure still runs on a real OS
//! thread, but it only executes when the scheduler gives it the turn,
//! and `join` becomes a modeled blocking operation (enabled once the
//! target finished). Outside an execution, everything passes through to
//! `std::thread`.
//!
//! A panic that escapes a model thread's closure is recorded as a
//! [`crate::Violation::Panic`] and tears the execution down — unlike
//! `std`, where it would surface only through `join`. Model code that
//! intends a panic must catch it itself (as parkit's task wrappers do).

#[cfg(not(feature = "model"))]
pub use std::thread::{spawn, yield_now, Builder, JoinHandle};

pub use std::thread::available_parallelism;

#[cfg(feature = "model")]
pub use model::{spawn, yield_now, Builder, JoinHandle};

#[cfg(feature = "model")]
mod model {
    use crate::rt::{self, Op};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Outcome<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

    /// A handle to a spawned thread; modeled when spawned inside an
    /// execution, a plain `std` handle otherwise.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.0 {
                Inner::Std(_) => f.write_str("JoinHandle(std)"),
                Inner::Model { tid, .. } => write!(f, "JoinHandle(model thread {tid})"),
            }
        }
    }

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<rt::Exec>,
            tid: usize,
            os: std::thread::JoinHandle<()>,
            outcome: Outcome<T>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload it escaped with). A modeled blocking operation:
        /// enabled once the target thread has finished.
        ///
        /// # Panics
        ///
        /// Panics if the model thread's outcome slot is empty, which
        /// would be a scheduler bug.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model {
                    exec,
                    tid,
                    os,
                    outcome,
                } => {
                    if let Some((cur, me)) = rt::current() {
                        debug_assert!(Arc::ptr_eq(&cur, &exec));
                        cur.yield_op(me, Op::Join(tid));
                    }
                    // Model-finished implies the OS thread is exiting;
                    // the real join is immediate (and also correct
                    // during teardown, when the model op was skipped).
                    let _ = os.join();
                    let mut slot = match outcome.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    slot.take()
                        .unwrap_or_else(|| panic!("model thread {tid} finished without an outcome"))
                }
            }
        }
    }

    fn spawn_inner<F, T>(name: Option<String>, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some((exec, me)) = rt::current() else {
            let mut b = std::thread::Builder::new();
            if let Some(n) = name {
                b = b.name(n);
            }
            return b.spawn(f).map(|h| JoinHandle(Inner::Std(h)));
        };
        // Spawning is itself a scheduling point, then the registration
        // happens while we still hold the turn.
        exec.yield_op(me, Op::Spawn);
        let tid = exec.register_thread(name.clone());
        let outcome: Outcome<T> = Arc::new(Mutex::new(None));
        let slot = outcome.clone();
        let child_exec = exec.clone();
        let mut b = std::thread::Builder::new();
        if let Some(n) = name {
            b = b.name(n);
        }
        let os = b.spawn(move || {
            rt::set_current(Some((child_exec.clone(), tid)));
            child_exec.wait_first_turn(tid);
            let result = catch_unwind(AssertUnwindSafe(f));
            match result {
                Ok(v) => {
                    if let Ok(mut s) = slot.lock() {
                        *s = Some(Ok(v));
                    }
                }
                Err(payload) => {
                    if !rt::is_abort(payload.as_ref()) {
                        child_exec.record_thread_panic(tid, payload.as_ref());
                    }
                    if let Ok(mut s) = slot.lock() {
                        *s = Some(Err(payload));
                    }
                }
            }
            child_exec.finish_thread(tid);
        })?;
        Ok(JoinHandle(Inner::Model {
            exec,
            tid,
            os,
            outcome,
        }))
    }

    /// Spawns a thread (modeled inside an execution).
    ///
    /// # Panics
    ///
    /// Panics if the underlying OS spawn fails.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(None, f).unwrap_or_else(|e| panic!("thread spawn failed: {e}"))
    }

    /// Mirror of `std::thread::Builder` over the model spawn.
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with no name set.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Names the thread (kept on the OS thread and in the model's
        /// deadlock reports).
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawns the thread.
        ///
        /// # Errors
        ///
        /// Propagates OS spawn failure.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            spawn_inner(self.name, f)
        }
    }

    /// A bare scheduling point inside an execution; `std` yield outside.
    pub fn yield_now() {
        if let Some((exec, me)) = rt::current() {
            exec.yield_op(me, Op::Yield);
        } else {
            std::thread::yield_now();
        }
    }
}
