//! The model-execution runtime: a cooperative, turn-based scheduler.
//!
//! One model execution runs the test body once under a fully controlled
//! interleaving. Every model thread is a real OS thread, but **exactly
//! one runs at a time**: at every synchronization operation (a *yield
//! point*) the running thread declares the operation it is about to
//! perform, hands the scheduling decision to [`Exec::pick_next`], and
//! parks until it is chosen again. The scheduler is decentralized — it
//! executes inline on whichever thread just yielded — and the chosen
//! sequence of thread ids *is* the schedule, which makes replay trivial:
//! prescribe the sequence and the execution reproduces bit-for-bit
//! (model bodies must themselves be deterministic).
//!
//! Blocking is modeled, never real: a thread whose pending operation is
//! disabled (lock on a held mutex, join on a live thread, condvar wait)
//! simply stays unchosen. When no thread is enabled and some are
//! unfinished, the execution has deadlocked — that single check also
//! catches lost wakeups, because `wait_timeout` is modeled as a plain
//! wait (timeout backstops never fire in the model; a protocol that
//! needs them for progress is a lost-wakeup bug).
//!
//! Teardown after a violation cannot forcibly kill parked OS threads, so
//! the runtime *aborts* them: every parked thread wakes, observes the
//! abort flag and panics with a private [`Abort`] payload that unwinds
//! it out of the model code. Shim operations reached while unwinding
//! (drop glue) skip the model and fall through to the real primitive —
//! real concurrency resumes for the teardown, which is safe because the
//! shim wraps real `std` primitives underneath.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Process-unique ids for model objects (mutexes, condvars, atomics).
/// Never reset: statics keep their id across executions, so uniqueness
/// is global. The explorer canonicalizes ids per trace (order of first
/// appearance) before comparing operations across runs.
static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh model-object id.
pub(crate) fn new_object_id() -> u64 {
    OBJECT_IDS.fetch_add(1, Ordering::Relaxed)
}

/// The panic payload used to unwind parked threads during teardown.
pub(crate) struct Abort;

pub(crate) fn is_abort(payload: &(dyn Any + Send)) -> bool {
    payload.is::<Abort>()
}

/// A synchronization operation, declared at a yield point *before* it
/// executes. Object ids are the raw process-unique ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling of a freshly spawned thread.
    Start,
    /// Acquire a mutex (also the re-acquire half of a condvar wait).
    Lock(u64),
    /// Release a mutex.
    Unlock(u64),
    /// Condvar wait: release `mutex`, park on `cv` until notified.
    Wait { cv: u64, mutex: u64 },
    /// Wake one `cv` waiter (FIFO; dropped if nobody waits).
    NotifyOne(u64),
    /// Wake every `cv` waiter.
    NotifyAll(u64),
    /// A shared-memory atomic operation (`write` = mutating).
    Atomic { obj: u64, write: bool },
    /// Spawn a new model thread.
    Spawn,
    /// Join thread `tid` (enabled once it has finished).
    Join(usize),
    /// A bare scheduling point (`thread::yield_now`).
    Yield,
}

impl Op {
    /// `(object id, writes)` for the independence relation. `None`
    /// object means "global": conservatively dependent with everything.
    pub(crate) fn key(self) -> (Option<u64>, bool) {
        match self {
            Op::Lock(o) | Op::Unlock(o) => (Some(o), true),
            Op::Wait { cv, .. } | Op::NotifyOne(cv) | Op::NotifyAll(cv) => (Some(cv), true),
            Op::Atomic { obj, write } => (Some(obj), write),
            Op::Start | Op::Spawn | Op::Join(_) | Op::Yield => (None, true),
        }
    }
}

/// What a thread is doing, from the scheduler's point of view.
#[derive(Debug)]
enum Status {
    /// Executing model code between yield points (holds the turn).
    Running,
    /// Parked at a yield point with a declared pending operation.
    Ready(Op),
    /// Parked in a condvar wait; disabled until notified.
    Waiting { cv: u64, mutex: u64 },
    /// The thread function returned.
    Finished,
}

struct ThreadState {
    status: Status,
    name: Option<String>,
}

/// One recorded scheduling decision, for the explorer.
#[derive(Debug, Clone)]
pub(crate) struct StepInfo {
    /// Every enabled thread at this point, with its pending op.
    pub enabled: Vec<(usize, Op)>,
    /// The thread that was chosen.
    pub chosen: usize,
    /// The thread that held the turn when the decision was made.
    pub yielder: usize,
    /// Whether the yielder itself was enabled (a switch away from an
    /// enabled yielder is a preemption; a forced switch is free).
    pub yielder_enabled: bool,
}

/// A concurrency property violation found during exploration.
#[derive(Debug, Clone)]
pub enum Violation {
    /// No thread can make progress, but not all have finished. Lost
    /// wakeups surface here: `wait_timeout` never times out under the
    /// model, so a missed notification parks its waiter forever.
    Deadlock {
        /// The schedule that reached the deadlock (replayable id).
        schedule: String,
        /// `(thread, description)` for every unfinished thread.
        blocked: Vec<(usize, String)>,
    },
    /// A model thread panicked (assertion failure in the model body, or
    /// an unexpected panic escaping a spawned thread).
    Panic {
        /// The schedule that triggered the panic (replayable id).
        schedule: String,
        /// The panicking thread.
        thread: usize,
        /// The panic message, if it was a string payload.
        message: String,
    },
    /// A single execution exceeded the step budget — the model is too
    /// big for the configured bounds, or livelocks.
    StepLimit {
        /// The schedule prefix that ran away.
        schedule: String,
    },
}

impl Violation {
    /// The replayable schedule id carried by this violation.
    pub fn schedule_id(&self) -> &str {
        match self {
            Violation::Deadlock { schedule, .. }
            | Violation::Panic { schedule, .. }
            | Violation::StepLimit { schedule } => schedule,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { schedule, blocked } => {
                write!(f, "deadlock under schedule {schedule}: ")?;
                for (i, (thread, what)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "thread {thread} blocked on {what}")?;
                }
                Ok(())
            }
            Violation::Panic {
                schedule,
                thread,
                message,
            } => write!(
                f,
                "thread {thread} panicked under schedule {schedule}: {message}"
            ),
            Violation::StepLimit { schedule } => {
                write!(f, "step budget exceeded under schedule prefix {schedule}")
            }
        }
    }
}

/// Encodes a choice sequence as a compact replayable id (base-36 digit
/// per thread id, `v1:` prefix).
pub(crate) fn encode_schedule(choices: &[usize]) -> String {
    let mut s = String::with_capacity(3 + choices.len());
    s.push_str("v1:");
    for &c in choices {
        s.push(char::from_digit(c as u32, 36).unwrap_or('?'));
    }
    s
}

/// Decodes a schedule id back into its choice sequence.
pub(crate) fn decode_schedule(id: &str) -> Option<Vec<usize>> {
    let digits = id.strip_prefix("v1:")?;
    digits
        .chars()
        .map(|c| c.to_digit(36).map(|d| d as usize))
        .collect()
}

struct State {
    threads: Vec<ThreadState>,
    /// Whose turn it is (usize::MAX once all threads have finished).
    active: usize,
    /// Choices made so far this execution.
    schedule: Vec<usize>,
    /// Scheduling decisions with their context, for the explorer.
    trace: Vec<StepInfo>,
    /// Prescribed choice prefix (DFS backtracking / replay).
    prefix: Vec<usize>,
    /// Locked-state per mutex object (absent = unlocked).
    mutexes: HashMap<u64, bool>,
    /// FIFO waiter queues per condvar object.
    waiters: HashMap<u64, VecDeque<usize>>,
    /// Unfinished thread count.
    live: usize,
    violation: Option<Violation>,
    abort: bool,
}

/// One model execution's shared scheduler state.
pub(crate) struct Exec {
    state: Mutex<State>,
    cv: Condvar,
    /// Step budget per execution (runaway guard).
    max_steps: usize,
}

fn lock_state<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// `(execution, thread id)` while running inside a model execution.
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context, if any.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Exec>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

impl Exec {
    pub(crate) fn new(prefix: Vec<usize>, max_steps: usize) -> Arc<Exec> {
        Arc::new(Exec {
            state: Mutex::new(State {
                threads: vec![ThreadState {
                    status: Status::Running,
                    name: Some("main".to_owned()),
                }],
                active: 0,
                schedule: Vec::new(),
                trace: Vec::new(),
                prefix,
                mutexes: HashMap::new(),
                waiters: HashMap::new(),
                live: 1,
                violation: None,
                abort: false,
            }),
            cv: Condvar::new(),
            max_steps,
        })
    }

    /// The violation recorded this execution, if any.
    pub(crate) fn violation(&self) -> Option<Violation> {
        lock_state(&self.state).violation.clone()
    }

    /// The recorded trace (choices + enabled sets) of this execution.
    pub(crate) fn trace(&self) -> Vec<StepInfo> {
        lock_state(&self.state).trace.clone()
    }

    fn describe(status: &Status) -> String {
        match status {
            Status::Running => "running".to_owned(),
            Status::Ready(op) => format!("blocked at {op:?}"),
            Status::Waiting { cv, .. } => format!("waiting on condvar #{cv}"),
            Status::Finished => "finished".to_owned(),
        }
    }

    fn enabled_op(st: &State, tid: usize) -> Option<Op> {
        match st.threads[tid].status {
            Status::Ready(op) => {
                let ok = match op {
                    Op::Lock(m) => !st.mutexes.get(&m).copied().unwrap_or(false),
                    Op::Join(t) => matches!(st.threads[t].status, Status::Finished),
                    _ => true,
                };
                ok.then_some(op)
            }
            _ => None,
        }
    }

    /// Records a violation, raises the abort flag and wakes every parked
    /// thread so the execution can unwind.
    fn flag_violation(&self, st: &mut State, v: Violation) {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. Called with no thread running (the
    /// previous runner just declared an op, parked in a wait, or
    /// finished). `yielder` is that previous runner.
    fn pick_next(&self, st: &mut State, yielder: usize) {
        if st.abort {
            return;
        }
        let enabled: Vec<(usize, Op)> = (0..st.threads.len())
            .filter_map(|t| Self::enabled_op(st, t).map(|op| (t, op)))
            .collect();
        if enabled.is_empty() {
            if st.live == 0 {
                st.active = usize::MAX;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<(usize, String)> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(i, t)| {
                    let what = Self::describe(&t.status);
                    match &t.name {
                        Some(name) => (i, format!("{name}: {what}")),
                        None => (i, what),
                    }
                })
                .collect();
            let v = Violation::Deadlock {
                schedule: encode_schedule(&st.schedule),
                blocked,
            };
            self.flag_violation(st, v);
            return;
        }
        let step = st.schedule.len();
        if step >= self.max_steps {
            let v = Violation::StepLimit {
                schedule: encode_schedule(&st.schedule),
            };
            self.flag_violation(st, v);
            return;
        }
        let yielder_enabled = enabled.iter().any(|&(t, _)| t == yielder);
        let chosen = if let Some(&p) = st.prefix.get(step) {
            assert!(
                enabled.iter().any(|&(t, _)| t == p),
                "schedule diverged at step {step}: prescribed thread {p} is not enabled \
                 (enabled: {:?}) — model bodies must be deterministic",
                enabled.iter().map(|&(t, _)| t).collect::<Vec<_>>()
            );
            p
        } else {
            // Default policy: keep running the yielder when possible
            // (zero preemptions), else the lowest-id enabled thread.
            if yielder_enabled {
                yielder
            } else {
                enabled[0].0
            }
        };
        st.trace.push(StepInfo {
            enabled,
            chosen,
            yielder,
            yielder_enabled,
        });
        st.schedule.push(chosen);
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Executes `me`'s pending op against the model state. Returns
    /// `true` when the op completed (thread becomes `Running`), `false`
    /// when the thread parked in a condvar wait (stage 1 of `Wait`).
    fn execute(&self, st: &mut State, me: usize) -> bool {
        let Status::Ready(op) = st.threads[me].status else {
            panic!("thread {me} scheduled without a pending op");
        };
        match op {
            Op::Lock(m) => {
                st.mutexes.insert(m, true);
            }
            Op::Unlock(m) => {
                st.mutexes.insert(m, false);
            }
            Op::Wait { cv, mutex } => {
                st.mutexes.insert(mutex, false);
                st.waiters.entry(cv).or_default().push_back(me);
                st.threads[me].status = Status::Waiting { cv, mutex };
                return false;
            }
            Op::NotifyOne(cv) => {
                if let Some(w) = st.waiters.entry(cv).or_default().pop_front() {
                    let Status::Waiting { mutex, .. } = st.threads[w].status else {
                        panic!("condvar waiter {w} not in waiting state");
                    };
                    st.threads[w].status = Status::Ready(Op::Lock(mutex));
                }
                // No waiter: the notification is dropped, exactly like a
                // real condvar — the source of lost-wakeup bugs.
            }
            Op::NotifyAll(cv) => {
                let drained: Vec<usize> = st.waiters.entry(cv).or_default().drain(..).collect();
                for w in drained {
                    let Status::Waiting { mutex, .. } = st.threads[w].status else {
                        panic!("condvar waiter {w} not in waiting state");
                    };
                    st.threads[w].status = Status::Ready(Op::Lock(mutex));
                }
            }
            Op::Start | Op::Atomic { .. } | Op::Spawn | Op::Join(_) | Op::Yield => {}
        }
        st.threads[me].status = Status::Running;
        true
    }

    /// Parks until it is `me`'s turn with an executable pending op, then
    /// executes it. Returns normally once the thread is `Running` again.
    ///
    /// # Panics
    ///
    /// Panics with the private [`Abort`] payload when the execution is
    /// torn down while this thread is parked. While the thread is
    /// already unwinding (drop glue during teardown), returns instead so
    /// the underlying real primitive can proceed.
    fn wait_and_execute(&self, me: usize) {
        let mut st = lock_state(&self.state);
        loop {
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::panic_any(Abort);
            }
            if st.active == me && matches!(st.threads[me].status, Status::Ready(_)) {
                if self.execute(&mut st, me) {
                    return;
                }
                // Parked in a condvar wait: hand the turn onward and
                // keep waiting for the notify + re-acquire.
                self.pick_next(&mut st, me);
                continue;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// The yield point: declares `op` as `me`'s next operation, runs the
    /// scheduler, parks until chosen, executes the op. Skips the model
    /// entirely (op falls through to the real primitive) when called
    /// during an abort-unwind.
    pub(crate) fn yield_op(&self, me: usize, op: Op) {
        {
            let mut st = lock_state(&self.state);
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::panic_any(Abort);
            }
            st.threads[me].status = Status::Ready(op);
            self.pick_next(&mut st, me);
        }
        self.wait_and_execute(me);
    }

    /// Registers a freshly spawned thread (caller must hold the turn).
    /// The new thread starts parked with a pending [`Op::Start`].
    pub(crate) fn register_thread(&self, name: Option<String>) -> usize {
        let mut st = lock_state(&self.state);
        st.threads.push(ThreadState {
            status: Status::Ready(Op::Start),
            name,
        });
        st.live += 1;
        st.threads.len() - 1
    }

    /// First park of a spawned thread: waits to be scheduled for the
    /// first time ([`Op::Start`]).
    pub(crate) fn wait_first_turn(&self, me: usize) {
        self.wait_and_execute(me);
    }

    /// Marks `me` finished and hands the turn onward.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = lock_state(&self.state);
        st.threads[me].status = Status::Finished;
        st.live -= 1;
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, me);
    }

    /// Records a panic escaping model thread `me` as a violation and
    /// tears the execution down.
    pub(crate) fn record_thread_panic(&self, me: usize, payload: &(dyn Any + Send)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_owned());
        let mut st = lock_state(&self.state);
        let v = Violation::Panic {
            schedule: encode_schedule(&st.schedule),
            thread: me,
            message,
        };
        self.flag_violation(&mut st, v);
    }

    /// Blocks the main thread until every model thread has finished (or
    /// the execution aborted). Called after the body returns.
    pub(crate) fn wait_all_done(&self) {
        let mut st = lock_state(&self.state);
        while st.live > 0 && !st.abort {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}
