//! # conckit — a schedule-exploring concurrency model checker
//!
//! The workspace applies formal methods to language-model outputs, but
//! until conckit its *own* concurrency substrate (parkit's
//! work-stealing pool, the sharded verdict cache, obskit's cross-thread
//! spans) was validated only by interleaving-blind unit tests. conckit
//! closes that gap with the same discipline: instead of sampling lucky
//! timings, it **enumerates** thread interleavings.
//!
//! ## How it works
//!
//! Code under test is written against the [`sync`] and [`thread`] shim
//! modules. In a normal build they are thin `std` re-exports — zero
//! overhead, nothing to audit. Under the `model` feature each
//! synchronization operation becomes a *yield point* that routes
//! through a cooperative scheduler: threads are real OS threads, but
//! exactly one runs at a time, and the scheduler's choice sequence *is*
//! the schedule. [`explore`] then drives a bounded-preemption DFS with
//! sleep-set pruning over the schedule tree (see [`explore()`] and the
//! module docs of `rt`), detecting:
//!
//! * **deadlock** — no thread can make progress but some are
//!   unfinished; lost wakeups surface here because `wait_timeout` is
//!   modeled as never timing out;
//! * **panics** — assertion failures in the model body, under every
//!   explored interleaving;
//! * **livelock** — a single execution exceeding the step budget.
//!
//! Every violation carries a deterministic **schedule id**; [`replay`]
//! re-executes exactly that interleaving, turning a one-in-a-million
//! race into a unit test.
//!
//! ## What is and is not explored
//!
//! Explored: every interleaving of shim operations (mutex acquisition
//! orders, condvar waits/notifies, SC atomics, spawn/join) reachable
//! within the preemption bound. Not modeled: weak-memory reorderings
//! (atomics are sequentially consistent), mutex poisoning, spurious
//! condvar wakeups, timeouts (they never fire), and non-shim shared
//! state (plain `std::sync` used directly is invisible to the
//! scheduler). Model bodies must be deterministic modulo scheduling.
//!
//! ```
//! # #[cfg(feature = "model")] {
//! use conckit::sync::{Arc, Mutex};
//!
//! let report = conckit::explore(&conckit::Config::default(), || {
//!     let total = Arc::new(Mutex::new(0));
//!     let t = {
//!         let total = total.clone();
//!         conckit::thread::spawn(move || {
//!             if let Ok(mut g) = total.lock() {
//!                 *g += 1;
//!             }
//!         })
//!     };
//!     if let Ok(mut g) = total.lock() {
//!         *g += 2;
//!     }
//!     let _ = t.join();
//!     assert_eq!(total.lock().map(|g| *g).unwrap_or(0), 3);
//! });
//! report.assert_ok();
//! assert!(report.schedules >= 2); // both acquisition orders explored
//! # }
//! ```

#![warn(missing_docs)]

pub mod sync;
pub mod thread;

#[cfg(feature = "model")]
mod explore;
#[cfg(feature = "model")]
mod rt;

#[cfg(feature = "model")]
pub use explore::{explore, replay, Config, Report};
#[cfg(feature = "model")]
pub use rt::Violation;

#[cfg(all(test, not(feature = "model")))]
mod passthrough_tests {
    //! Without the `model` feature the shim must behave exactly like
    //! `std` — these run in the plain workspace test suite.

    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Condvar, Mutex};

    #[test]
    fn shim_is_std_passthrough() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let m = Mutex::new(5);
        let cv = Condvar::new();
        {
            let mut g = m.lock().unwrap_or_else(|p| p.into_inner());
            *g += 1;
            cv.notify_all();
        }
        HITS.fetch_add(2, Ordering::SeqCst);
        assert_eq!(m.into_inner().unwrap_or(0), 6);
        assert_eq!(HITS.load(Ordering::SeqCst), 2);
        let h = crate::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().ok(), Some(42));
    }
}

#[cfg(all(test, feature = "model"))]
mod model_tests {
    //! The checker's own verification: seeded mutants must be caught,
    //! correct protocols must pass exhaustively, and violations must
    //! replay deterministically from their schedule ids.
    // ALLOW: test-only panics are the assertion mechanism
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Arc, Condvar, Mutex};
    use crate::{explore, replay, Config, Violation};

    /// A deliberately seeded **lost wakeup**: the waiter checks the flag
    /// in one critical section and waits in another, so the setter's
    /// notify can fire in the gap — before anyone waits — and be
    /// dropped, parking the waiter forever.
    fn lost_wakeup_mutant() {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let (flag, cv) = (flag.clone(), cv.clone());
            crate::thread::spawn(move || {
                let ready = flag.lock().map(|g| *g).unwrap_or(true);
                if !ready {
                    // BUG: the flag may be set (and notified) right here.
                    let guard = flag.lock().unwrap_or_else(|p| p.into_inner());
                    let _g = cv.wait(guard).unwrap_or_else(|p| p.into_inner());
                }
            })
        };
        {
            let mut g = flag.lock().unwrap_or_else(|p| p.into_inner());
            *g = true;
            cv.notify_one();
        }
        let _ = waiter.join();
    }

    /// The repaired protocol: re-check the predicate under the same
    /// guard the wait releases — the notify can no longer fall into an
    /// unprotected gap.
    fn lost_wakeup_fixed() {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let (flag, cv) = (flag.clone(), cv.clone());
            crate::thread::spawn(move || {
                let mut guard = flag.lock().unwrap_or_else(|p| p.into_inner());
                while !*guard {
                    guard = cv.wait(guard).unwrap_or_else(|p| p.into_inner());
                }
            })
        };
        {
            let mut g = flag.lock().unwrap_or_else(|p| p.into_inner());
            *g = true;
            cv.notify_one();
        }
        let _ = waiter.join();
    }

    #[test]
    fn detects_seeded_lost_wakeup_and_replays_it() {
        let config = Config::default();
        let report = explore(&config, lost_wakeup_mutant);
        let violation = report.violation.expect("the mutant must be caught");
        let Violation::Deadlock { schedule, blocked } = &violation else {
            panic!("expected a deadlock (lost wakeup), got {violation:?}");
        };
        assert!(
            blocked.iter().any(|(_, what)| what.contains("condvar")),
            "the lost waiter should be parked on the condvar: {blocked:?}"
        );
        // The schedule id replays to the same violation, twice.
        for _ in 0..2 {
            let replayed = replay(&config, schedule, lost_wakeup_mutant)
                .expect("replaying the failing schedule must reproduce the violation");
            match replayed {
                Violation::Deadlock { schedule: s2, .. } => assert_eq!(&s2, schedule),
                other => panic!("replay produced a different violation: {other:?}"),
            }
        }
    }

    #[test]
    fn fixed_wakeup_protocol_passes_exhaustively() {
        let report = explore(&Config::default(), lost_wakeup_fixed);
        report.assert_ok();
        assert!(report.schedules >= 2, "expected real branching");
    }

    /// A deliberately seeded **AB-BA deadlock**.
    fn abba_mutant() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let t = {
            let (a, b) = (a.clone(), b.clone());
            crate::thread::spawn(move || {
                let _ga = a.lock().unwrap_or_else(|p| p.into_inner());
                let _gb = b.lock().unwrap_or_else(|p| p.into_inner());
            })
        };
        {
            let _gb = b.lock().unwrap_or_else(|p| p.into_inner());
            let _ga = a.lock().unwrap_or_else(|p| p.into_inner());
        }
        let _ = t.join();
    }

    #[test]
    fn detects_seeded_abba_deadlock() {
        let config = Config::default();
        let report = explore(&config, abba_mutant);
        let violation = report.violation.expect("AB-BA must deadlock somewhere");
        assert!(
            matches!(violation, Violation::Deadlock { .. }),
            "expected a deadlock, got {violation:?}"
        );
        let id = violation.schedule_id();
        assert!(
            matches!(
                replay(&config, id, abba_mutant),
                Some(Violation::Deadlock { .. })
            ),
            "replay must reproduce the deadlock"
        );
    }

    #[test]
    fn consistent_lock_order_passes() {
        let report = explore(&Config::default(), || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let t = {
                let (a, b) = (a.clone(), b.clone());
                crate::thread::spawn(move || {
                    let _ga = a.lock().unwrap_or_else(|p| p.into_inner());
                    let _gb = b.lock().unwrap_or_else(|p| p.into_inner());
                })
            };
            {
                let _ga = a.lock().unwrap_or_else(|p| p.into_inner());
                let _gb = b.lock().unwrap_or_else(|p| p.into_inner());
            }
            let _ = t.join();
        });
        report.assert_ok();
    }

    #[test]
    fn catches_atomicity_violation_as_panicking_schedule() {
        // A read-modify-write split across two atomic ops loses updates
        // under the right interleaving; the assertion catches it and the
        // violation carries a replayable schedule.
        let config = Config::default();
        let racy = || {
            let n = Arc::new(AtomicUsize::new(0));
            let t = {
                let n = n.clone();
                crate::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            };
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            let _ = t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let report = explore(&config, racy);
        let violation = report.violation.expect("the lost update must be found");
        let Violation::Panic {
            schedule, message, ..
        } = &violation
        else {
            panic!("expected a panic violation, got {violation:?}");
        };
        assert!(message.contains("lost update"), "message: {message}");
        let replayed = replay(&config, schedule, racy);
        assert!(
            matches!(replayed, Some(Violation::Panic { .. })),
            "replay must reproduce the assertion failure"
        );
    }

    #[test]
    fn fetch_add_is_atomic() {
        let report = explore(&Config::default(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let t = {
                let n = n.clone();
                crate::thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            };
            n.fetch_add(1, Ordering::SeqCst);
            let _ = t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        report.assert_ok();
    }

    #[test]
    fn preemption_bound_zero_still_covers_blocking_switches() {
        // With a bound of 0 the only context switches are forced ones —
        // the fixed protocol still terminates in every explored
        // schedule, just fewer of them.
        let tight = explore(&Config::with_bound(0), lost_wakeup_fixed);
        tight.assert_ok();
        let loose = explore(&Config::with_bound(2), lost_wakeup_fixed);
        loose.assert_ok();
        assert!(loose.schedules >= tight.schedules);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(&Config::default(), lost_wakeup_fixed);
        let b = explore(&Config::default(), lost_wakeup_fixed);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.max_depth, b.max_depth);
    }

    #[test]
    fn schedule_budget_marks_report_incomplete() {
        let config = Config {
            max_schedules: 1,
            ..Config::default()
        };
        let report = explore(&config, lost_wakeup_fixed);
        assert!(!report.complete);
        assert_eq!(report.schedules, 1);
    }
}
