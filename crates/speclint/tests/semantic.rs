//! Integration tests of the semantic rule-book analysis: a pathological
//! book exercising every `SL30x` code pinned to a golden JSON report,
//! and a property test that `SL300` (empty language) never misfires —
//! every flagged formula is confirmed unsatisfiable on a live product.

#![allow(clippy::expect_used)] // ALLOW: test-only panics are the assertion mechanism.

use autokit::{ActSet, Controller, ControllerBuilder, Guard, PropSet, Vocab, WorldModel};
use ltlcheck::specs::Spec;
use ltlcheck::{parse, Ltl};
use proptest::prelude::*;
use serde::Serialize;
use speclint::presets::free_controller;
use speclint::semantic::{analyze, CorpusController, SemanticInput, SemanticWorld};
use speclint::sort_diagnostics;

fn vocab() -> Vocab {
    let mut v = Vocab::new();
    v.add_prop("a").expect("fresh");
    v.add_prop("b").expect("fresh");
    v.add_act("go").expect("fresh");
    v.add_act("wait").expect("fresh");
    v
}

/// One-state world labeled `{a}` with a self-loop.
fn always_a_model(v: &Vocab) -> WorldModel {
    let a = v.prop("a").expect("registered");
    let mut model = WorldModel::new("always-a");
    let s = model.add_state(PropSet::singleton(a));
    model.add_transition(s, s);
    model
}

fn free(v: &Vocab) -> Controller {
    free_controller(
        "free",
        &[
            ActSet::singleton(v.act("go").expect("registered")),
            ActSet::singleton(v.act("wait").expect("registered")),
        ],
    )
}

fn spec(name: &str, v: &Vocab, src: &str) -> Spec {
    Spec {
        name: name.to_string(),
        description: String::new(),
        formula: parse(src, v).expect("parses"),
    }
}

/// A rule book built to trip every semantic code at once: an empty
/// language (SL300), a rule holding with the controller unconstrained
/// (SL301), a rule whose trigger is unreachable (SL302), a conflicting
/// pair (SL303), a subsumed pair (SL304), and — with a single-controller
/// corpus — zero-discrimination findings (SL305).
fn pathological_input() -> SemanticInput {
    let v = vocab();
    let model = always_a_model(&v);
    let waiter = ControllerBuilder::new("waiter", 1)
        .initial(0)
        .transition(
            0,
            Guard::always(),
            ActSet::singleton(v.act("wait").expect("registered")),
            0,
        )
        .build()
        .expect("well-formed");
    SemanticInput {
        specs: vec![
            spec("empty", &v, "F (a & !a)"),
            spec("trivial", &v, "F a"),
            spec("dormant", &v, "G (b -> !go)"),
            spec("progress", &v, "G F go"),
            spec("caution", &v, "G (a -> !go)"),
            spec("strong", &v, "G !go"),
        ],
        worlds: vec![SemanticWorld::from_parts(
            "always-a",
            &model,
            &free(&v),
            Vec::new(),
        )],
        corpus: vec![CorpusController::from_parts(
            "waiter",
            "always-a",
            &model,
            &waiter,
            Vec::new(),
        )],
        vocab: Some(v),
    }
}

fn check_golden(file: &str, got: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("golden file writes");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "semantic report drifted from tests/golden/{file}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Every `SL30x` code fires on the pathological book and the full sorted
/// report is byte-stable against the golden file.
#[test]
fn pathological_book_trips_every_code_and_matches_golden() {
    let mut diags = analyze(&pathological_input());
    sort_diagnostics(&mut diags);
    for code in ["SL300", "SL301", "SL302", "SL303", "SL304", "SL305"] {
        assert!(
            diags.iter().any(|d| d.code.code() == code),
            "{code} missing from {diags:?}"
        );
    }
    let got =
        serde_json::to_string_pretty(&diags.to_value()).expect("diagnostics are a plain tree");
    check_golden("semantic_codes.json", &got);
}

/// Sorting is deterministic: two independent analyses of the same input
/// serialize identically.
#[test]
fn analysis_is_deterministic_across_runs() {
    let render = || {
        let mut diags = analyze(&pathological_input());
        sort_diagnostics(&mut diags);
        serde_json::to_string_pretty(&diags.to_value()).expect("diagnostics are a plain tree")
    };
    assert_eq!(render(), render());
}

fn arb_ltl() -> impl Strategy<Value = Ltl> {
    let v = vocab();
    let a = v.prop("a").expect("registered");
    let b = v.prop("b").expect("registered");
    let go = v.act("go").expect("registered");
    let leaf = prop_oneof![
        Just(Ltl::True),
        Just(Ltl::False),
        Just(Ltl::prop(a)),
        Just(Ltl::prop(b)),
        Just(Ltl::act(go)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ltl::not),
            inner.clone().prop_map(Ltl::next),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::or(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Ltl::until(l, r)),
            (inner.clone(), inner).prop_map(|(l, r)| Ltl::release(l, r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `SL300` has no false positives: every random formula the analysis
    /// flags as an empty language is confirmed unsatisfiable on a live
    /// product — no fair path of the free `always-a` product satisfies
    /// it.
    #[test]
    fn sl300_flagged_specs_are_unsatisfiable_on_live_product(phi in arb_ltl()) {
        let v = vocab();
        let model = always_a_model(&v);
        let world = SemanticWorld::from_parts("always-a", &model, &free(&v), Vec::new());
        let graph = world.graph.clone();
        let input = SemanticInput {
            specs: vec![Spec {
                name: "random".to_owned(),
                description: String::new(),
                formula: phi.clone(),
            }],
            worlds: vec![world],
            corpus: Vec::new(),
            vocab: Some(v),
        };
        let diags = analyze(&input);
        if diags.iter().any(|d| d.code.code() == "SL300") {
            prop_assert!(
                !ltlcheck::analysis::exists_fair_path(&graph, &phi, &[]),
                "SL300 fired but the live product satisfies {phi:?}"
            );
        }
    }
}
