//! End-to-end tests of the `speclint` binary: the JSON report is pinned
//! to a golden file (the schema is consumed by CI tooling and by the
//! pipeline pre-flight gate, so drift must be deliberate), and the exit
//! codes follow the documented contract.

#![allow(clippy::expect_used)] // ALLOW: test-only panics are the assertion mechanism.

use std::process::Command;

fn speclint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_speclint"))
        .args(args)
        .output()
        .expect("speclint binary runs")
}

/// `--format json` output is byte-identical to the checked-in golden
/// report. To update after a deliberate change:
/// `cargo run -p speclint -- --format json > crates/speclint/tests/golden/report.json`
#[test]
fn json_report_matches_golden_file() {
    let out = speclint(&["--format", "json"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let got = String::from_utf8(out.stdout).expect("utf-8 output");
    let golden = include_str!("golden/report.json");
    assert_eq!(
        got.trim_end(),
        golden.trim_end(),
        "JSON report drifted from tests/golden/report.json; \
         regenerate it if the change is intentional"
    );
}

/// The golden report itself parses as the documented stable object.
#[test]
fn golden_report_is_valid_json_with_tally() {
    let golden = include_str!("golden/report.json");
    let value: serde::Value = serde_json::from_str(golden).expect("golden parses");
    value.field("diagnostics").expect("diagnostics array");
    let tally = value.field("tally").expect("tally object");
    for key in ["errors", "warnings", "notes"] {
        tally
            .field(key)
            .unwrap_or_else(|e| panic!("tally.{key}: {e}"));
    }
}

/// Exit-code contract: the shipped rule books and controllers are clean,
/// so both the plain run and `--deny-warnings` must exit 0 — any new
/// warning in a preset artifact trips this gate.
#[test]
fn clean_presets_exit_zero_even_denying_warnings() {
    let out = speclint(&[]);
    assert_eq!(out.status.code(), Some(0));
    let out = speclint(&["--deny-warnings"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "shipped artifacts grew a warning"
    );
}

/// Usage errors exit with status 2 and report on stderr.
#[test]
fn usage_errors_exit_two() {
    let out = speclint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty());

    let out = speclint(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("yaml"));

    let out = speclint(&["--book", "cookbook"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cookbook"));
}

/// JSON output is deterministic: two runs produce byte-identical
/// reports. Diagnostics are emitted in canonical (subject, code,
/// element, message) order, so this holds regardless of analysis
/// iteration order.
#[test]
fn json_output_is_byte_identical_across_runs() {
    let first = speclint(&["--format", "json", "--book", "warehouse"]);
    let second = speclint(&["--format", "json", "--book", "warehouse"]);
    assert!(first.status.success());
    assert_eq!(first.stdout, second.stdout, "JSON report is not stable");
}

/// The semantic gate rejects the deliberately conflicting preset book
/// with exit 1 (its two rules are individually satisfiable, so the
/// syntactic pass alone accepts them), and the JSON report is pinned.
/// To update: `cargo run -p speclint -- --semantic --book conflict-demo
/// --format json > crates/speclint/tests/golden/semantic_conflict.json`
#[test]
fn semantic_gate_rejects_conflicting_book() {
    let out = speclint(&["--semantic", "--book", "conflict-demo", "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "SL303 must fail the gate");
    let got = String::from_utf8(out.stdout).expect("utf-8 output");
    let golden = include_str!("golden/semantic_conflict.json");
    assert_eq!(got.trim_end(), golden.trim_end());
    assert!(got.contains("SL303"), "{got}");

    // The syntactic pass cannot see the conflict: same book, exit 0.
    let out = speclint(&["--book", "conflict-demo", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(0), "syntactic pass should accept");
}
