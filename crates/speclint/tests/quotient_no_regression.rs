//! Property: controller minimization never introduces unreachable-state
//! lints.
//!
//! `autokit::Controller::bisimulation_quotient` merges bisimilar states
//! and copies transitions (guards included) onto the blocks, so every
//! state reachable in the original maps to a reachable block. Hence a
//! controller with no `SL101` findings must minimize to a controller with
//! no `SL101` findings — and in general the quotient can only *lose*
//! unreachable states (by merging them away), never gain them.

use autokit::{ActSet, Controller, ControllerBuilder, Guard, PropSet};
use proptest::prelude::*;
use speclint::{lint_controller, ControllerContext, LintCode};

fn arb_controller() -> impl Strategy<Value = Controller> {
    (
        1usize..5, // number of states
        proptest::collection::vec((0usize..5, 0u32..16, 0u32..16, 0u32..4, 0usize..5), 0..12), // (from, guard.pos, guard.neg, action, to)
    )
        .prop_map(|(nq, transitions)| {
            let mut builder = ControllerBuilder::new("random", nq).initial(0);
            for (from, pos, neg, act, to) in transitions {
                builder = builder.transition(
                    from % nq,
                    Guard {
                        pos: PropSet::from_bits(pos),
                        neg: PropSet::from_bits(neg),
                    },
                    ActSet::from_bits(act),
                    to % nq,
                );
            }
            builder.build().expect("indices are in range")
        })
}

fn unreachable_count(ctrl: &Controller) -> usize {
    lint_controller(ctrl, ControllerContext::default())
        .iter()
        .filter(|d| d.code == LintCode::UnreachableState)
        .count()
}

proptest! {
    #[test]
    fn quotient_never_regains_unreachable_state_lints(ctrl in arb_controller()) {
        let before = unreachable_count(&ctrl);
        let after = unreachable_count(&ctrl.bisimulation_quotient());
        prop_assert!(
            after <= before,
            "quotient has {after} unreachable states, original had {before}"
        );
        if before == 0 {
            prop_assert_eq!(after, 0, "lint-clean controller minimized into SL101 findings");
        }
    }
}
