//! speclint — static analysis for specifications, controllers, and parsed
//! step lists.
//!
//! The DPO-AF pipeline consumes three kinds of artifacts before any model
//! checking happens: LTL rule books, finite-state controllers, and the
//! natural-language step lists controllers are synthesized from. Each can
//! be silently broken in ways model checking only surfaces late (or never:
//! a vacuously-passing rule produces no counterexample at all). This crate
//! lints all three up front:
//!
//! * **Spec lints (`SL0xx`)** — satisfiability, tautology, vacuity,
//!   pairwise conflict, subsumption ([`lint_specs`]).
//! * **Controller lints (`SL1xx`)** — unreachable states, dead
//!   transitions, nondeterminism, incompleteness, sinks, unused vocabulary
//!   ([`lint_controller`]).
//! * **Step lints (`SL2xx`)** — unparseable steps, lexicon-coverage gaps,
//!   ambiguous steps ([`lint_steps`]).
//! * **Semantic spec analysis (`SL3xx`)** — satisfiability, world-model
//!   vacuity, pairwise conflict under the world, subsumption, and corpus
//!   discrimination, via the ltlcheck automaton machinery
//!   ([`semantic::analyze`]).
//!
//! Findings are [`Diagnostic`]s with stable codes, suitable for both human
//! output and the JSON schema the `speclint` CLI emits. [`run`] lints a
//! whole [`LintInput`] bundle in one call.

pub mod controller;
pub mod diagnostics;
pub mod presets;
pub mod semantic;
pub mod spec;
pub mod steps;

pub use controller::{lint_controller, ControllerContext};
pub use diagnostics::{sort_diagnostics, Diagnostic, LintCode, Location, Severity, Tally};
pub use semantic::{analyze, CorpusController, SemanticInput, SemanticWorld};
pub use spec::lint_specs;
pub use steps::lint_steps;

use autokit::{Controller, LabelGraph, PropSet, Vocab};
use glm2fsa::Lexicon;
use ltlcheck::specs::Spec;

/// A controller plus the optional context that sharpens its lints.
#[derive(Debug, Clone)]
pub struct ControllerInput {
    /// The controller to lint.
    pub controller: Controller,
    /// Vocabulary for name rendering and the unused-atom lint.
    pub vocab: Option<Vocab>,
    /// Observations the environment can produce (world-model state
    /// labels); enables the stronger dead-transition and the
    /// incomplete-state checks.
    pub observations: Option<Vec<PropSet>>,
}

/// A natural-language step list plus the lexicon it will be synthesized
/// through.
#[derive(Debug, Clone)]
pub struct StepListInput {
    /// Display name (e.g. the task prompt).
    pub name: String,
    /// Raw step texts.
    pub steps: Vec<String>,
    /// Alignment lexicon.
    pub lexicon: Lexicon,
    /// Canonical vocabulary behind the lexicon.
    pub vocab: Vocab,
}

/// Everything [`run`] lints in one pass.
#[derive(Debug, Clone, Default)]
pub struct LintInput {
    /// The rule book.
    pub specs: Vec<Spec>,
    /// Named label graphs for vacuity analysis of the rule book.
    pub spec_graphs: Vec<(String, LabelGraph)>,
    /// Vocabulary for rendering formulas in spec findings.
    pub spec_vocab: Option<Vocab>,
    /// Controllers to lint.
    pub controllers: Vec<ControllerInput>,
    /// Step lists to lint.
    pub step_lists: Vec<StepListInput>,
}

/// Lints an input bundle: specs first, then controllers, then step lists.
pub fn run(input: &LintInput) -> Vec<Diagnostic> {
    let mut diags = lint_specs(&input.specs, &input.spec_graphs, input.spec_vocab.as_ref());
    for c in &input.controllers {
        diags.extend(lint_controller(
            &c.controller,
            ControllerContext {
                vocab: c.vocab.as_ref(),
                observations: c.observations.as_deref(),
            },
        ));
    }
    for s in &input.step_lists {
        diags.extend(lint_steps(&s.name, &s.steps, &s.lexicon, &s.vocab));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::{ActSet, ControllerBuilder, Guard};
    use ltlcheck::parse;

    #[test]
    fn run_covers_all_three_analyzer_families() {
        let mut vocab = Vocab::new();
        vocab.add_prop("a").expect("fresh");
        let act = vocab.add_act("go").expect("fresh");
        let specs = vec![Spec {
            name: "bad".to_owned(),
            description: String::new(),
            formula: parse("F (a & !a)", &vocab).expect("parses"),
        }];
        let controller = ControllerBuilder::new("orphan", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(act), 0)
            .build()
            .expect("well-formed");
        let driving = autokit::presets::DrivingDomain::new();
        let lexicon = Lexicon::driving(&driving);
        let input = LintInput {
            specs,
            spec_vocab: Some(vocab.clone()),
            controllers: vec![ControllerInput {
                controller,
                vocab: None,
                observations: None,
            }],
            step_lists: vec![StepListInput {
                name: "demo".to_owned(),
                steps: vec!["Do a barrel roll.".to_owned()],
                lexicon,
                vocab: driving.vocab.clone(),
            }],
            ..Default::default()
        };
        let diags = run(&input);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.code()).collect();
        assert!(codes.contains(&"SL001"), "{codes:?}");
        assert!(codes.contains(&"SL101"), "{codes:?}");
        assert!(codes.contains(&"SL201"), "{codes:?}");
    }
}
