//! Ready-made [`LintInput`]s for the shipped content: the driving and
//! warehouse rule books, the paper's demonstration controllers, and
//! their step lists. The `speclint` CLI and the `bench` rule-book tool
//! are thin wrappers over these.

// Everything here is built from compile-time constants; a build failure is
// a bug in this crate, not an input condition, so panicking is correct.
#![allow(clippy::expect_used)] // ALLOW: built from compile-time constants; failure is a bug in this crate.

use crate::semantic::{CorpusController, SemanticInput, SemanticWorld};
use crate::{ControllerInput, LintInput, StepListInput};
use autokit::presets::DrivingDomain;
use autokit::{
    ActSet, Controller, ControllerBuilder, DeadlockPolicy, Guard, LabelGraph, Product, PropSet,
    Vocab, WorldModel,
};
use drivesim::formal::scenario_justice;
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action, FsaOptions, Lexicon};
use ltlcheck::parse;
use ltlcheck::specs::{driving_specs, Spec};
use warehouse::{warehouse_justice, warehouse_specs, WarehouseDomain};

/// The paper's §5.1 right-turn response before fine-tuning (aligned
/// form). Duplicated from `dpo_af::experiments::demo` because `dpo-af`
/// depends on this crate for its pre-flight gate.
pub const RIGHT_TURN_BEFORE: [&str; 5] = [
    "Observe the state of the green traffic light.",
    "If the green traffic light is on, execute the action go straight.",
    "As you approach the intersection, observe the state of the car from left.",
    "If the car from left is not present, check the state of the pedestrian at right.",
    "If the pedestrian at right is not present, execute the action turn right.",
];
/// The paper's §5.1 right-turn response after fine-tuning.
pub const RIGHT_TURN_AFTER: [&str; 3] = [
    "Observe the traffic light in front of you.",
    "Check for the left approaching car and right side pedestrian.",
    "If no car from the left is approaching and no pedestrian on the right, proceed to turn right.",
];
/// The paper's Appendix C left-turn response before fine-tuning.
pub const LEFT_TURN_BEFORE: [&str; 4] = [
    "Approach the traffic light with a left-turn light.",
    "Wait for the left-turn light to turn green.",
    "When the left-turn light turns green, wait for oncoming traffic to clear before turning left.",
    "Turn left and proceed through the intersection.",
];
/// The paper's Appendix C left-turn response after fine-tuning.
pub const LEFT_TURN_AFTER: [&str; 3] = [
    "Approach the traffic light and observe the left turn light.",
    "If the left turn light is not green, then stop.",
    "If the left turn light is green, then turn left.",
];

/// Canonical careful step lists for the four warehouse tasks.
pub const WAREHOUSE_STEPS: [(&str, &[&str]); 4] = [
    (
        "pick an item from the shelf",
        &[
            "Check for the shelf detected.",
            "Observe the human nearby and the obstacle ahead.",
            "If shelf detected and no human nearby and no obstacle ahead, pick item.",
        ],
    ),
    (
        "deliver the item to the packing station",
        &[
            "Observe the human nearby and the obstacle ahead.",
            "If no human nearby and no obstacle ahead, place item.",
        ],
    ),
    (
        "patrol the aisle",
        &[
            "Observe the human nearby and the obstacle ahead.",
            "If no human nearby and no obstacle ahead, move forward.",
        ],
    ),
    (
        "recharge when the battery is low",
        &["Check for the battery low.", "If battery low, dock."],
    ),
];

/// A maximally permissive one-state controller emitting any of `acts`.
pub fn free_controller(name: &str, acts: &[ActSet]) -> Controller {
    let mut builder = ControllerBuilder::new(name, 1).initial(0);
    for &act in acts {
        builder = builder.transition(0, Guard::always(), act, 0);
    }
    builder.build().expect("one state, all endpoints in range")
}

fn graph_under(model: &WorldModel, free: &Controller) -> LabelGraph {
    Product::build(model, free).label_graph(DeadlockPolicy::Stutter)
}

fn labels_of(model: &WorldModel) -> Vec<PropSet> {
    model.states().map(|s| model.label(s)).collect()
}

/// The scenario's world model — re-exported from
/// [`drivesim::formal::scenario_model`], the single source of truth
/// shared with `dpo-af` and `certkit`.
pub use drivesim::formal::scenario_model;

/// Lint input for the driving domain: the 15-rule book with per-scenario
/// vacuity graphs, the four paper demonstration controllers (with their
/// scenario observations), the free controller, and the demo step lists.
pub fn driving_input() -> LintInput {
    let d = DrivingDomain::new();
    let lexicon = Lexicon::driving(&d);
    let free = free_controller(
        "free (driving)",
        &[d.stop, d.turn_left, d.turn_right, d.go_straight].map(ActSet::singleton),
    );
    let options = || FsaOptions {
        non_blocking: ActSet::singleton(d.stop),
        ..FsaOptions::default()
    };

    let mut input = LintInput {
        specs: driving_specs(&d),
        spec_vocab: Some(d.vocab.clone()),
        ..Default::default()
    };
    for kind in ScenarioKind::all() {
        let model = scenario_model(&d, kind);
        input
            .spec_graphs
            .push((format!("{kind:?}"), graph_under(&model, &free)));
    }

    let demos: [(&str, &[&str], ScenarioKind); 4] = [
        (
            "turn right (before fine-tuning)",
            &RIGHT_TURN_BEFORE,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn right (after fine-tuning)",
            &RIGHT_TURN_AFTER,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn left (before fine-tuning)",
            &LEFT_TURN_BEFORE,
            ScenarioKind::LeftTurnSignal,
        ),
        (
            "turn left (after fine-tuning)",
            &LEFT_TURN_AFTER,
            ScenarioKind::LeftTurnSignal,
        ),
    ];
    for (name, steps, kind) in demos {
        let ctrl = synthesize(name, steps, &lexicon, options()).expect("paper demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        input.controllers.push(ControllerInput {
            controller: ctrl,
            vocab: Some(d.vocab.clone()),
            observations: Some(labels_of(&scenario_model(&d, kind))),
        });
        input.step_lists.push(StepListInput {
            name: name.to_owned(),
            steps: steps.iter().map(|s| s.to_string()).collect(),
            lexicon: lexicon.clone(),
            vocab: d.vocab.clone(),
        });
    }
    input.controllers.push(ControllerInput {
        controller: free,
        vocab: Some(d.vocab.clone()),
        observations: None,
    });
    input
}

/// Lint input for the warehouse domain: the 8-rule book with its floor
/// vacuity graph, one synthesized controller per task, the free
/// controller, and the canonical step lists.
pub fn warehouse_input() -> LintInput {
    let w = WarehouseDomain::new();
    let free = free_controller(
        "free (warehouse)",
        &[w.move_forward, w.pick, w.place, w.wait, w.dock].map(ActSet::singleton),
    );
    let floor = w.floor_model();

    let mut input = LintInput {
        specs: warehouse_specs(&w),
        spec_vocab: Some(w.vocab.clone()),
        spec_graphs: vec![("WarehouseFloor".to_owned(), graph_under(&floor, &free))],
        ..Default::default()
    };
    for (name, steps) in WAREHOUSE_STEPS {
        let options = FsaOptions {
            non_blocking: ActSet::singleton(w.wait),
            ..FsaOptions::default()
        };
        let ctrl =
            synthesize(name, steps, &w.lexicon, options).expect("canonical warehouse steps align");
        let ctrl = with_default_action(&ctrl, w.wait);
        input.controllers.push(ControllerInput {
            controller: ctrl,
            vocab: Some(w.vocab.clone()),
            observations: Some(labels_of(&floor)),
        });
        input.step_lists.push(StepListInput {
            name: name.to_owned(),
            steps: steps.iter().map(|s| s.to_string()).collect(),
            lexicon: w.lexicon.clone(),
            vocab: w.vocab.clone(),
        });
    }
    input.controllers.push(ControllerInput {
        controller: free,
        vocab: Some(w.vocab.clone()),
        observations: None,
    });
    input
}

/// Semantic-analysis input for the driving domain: the 15-rule book
/// deployed against all five scenario worlds (free product, scenario
/// justice), with the four paper demonstration controllers plus the free
/// controller as the discrimination corpus.
pub fn driving_semantic_input() -> SemanticInput {
    let d = DrivingDomain::new();
    let lexicon = Lexicon::driving(&d);
    let free = free_controller(
        "free (driving)",
        &[d.stop, d.turn_left, d.turn_right, d.go_straight].map(ActSet::singleton),
    );

    let mut input = SemanticInput {
        specs: driving_specs(&d),
        vocab: Some(d.vocab.clone()),
        ..Default::default()
    };
    for kind in ScenarioKind::all() {
        let model = scenario_model(&d, kind);
        let justice = scenario_justice(&d, kind);
        input.worlds.push(SemanticWorld::from_parts(
            format!("{kind:?}"),
            &model,
            &free,
            justice.clone(),
        ));
        input.corpus.push(CorpusController::from_parts(
            format!("free (driving) @ {kind:?}"),
            format!("{kind:?}"),
            &model,
            &free,
            justice,
        ));
    }

    let demos: [(&str, &[&str], ScenarioKind); 4] = [
        (
            "turn right (before fine-tuning)",
            &RIGHT_TURN_BEFORE,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn right (after fine-tuning)",
            &RIGHT_TURN_AFTER,
            ScenarioKind::TrafficLight,
        ),
        (
            "turn left (before fine-tuning)",
            &LEFT_TURN_BEFORE,
            ScenarioKind::LeftTurnSignal,
        ),
        (
            "turn left (after fine-tuning)",
            &LEFT_TURN_AFTER,
            ScenarioKind::LeftTurnSignal,
        ),
    ];
    for (name, steps, kind) in demos {
        let options = FsaOptions {
            non_blocking: ActSet::singleton(d.stop),
            ..FsaOptions::default()
        };
        let ctrl = synthesize(name, steps, &lexicon, options).expect("paper demo steps align");
        let ctrl = with_default_action(&ctrl, d.stop);
        input.corpus.push(CorpusController::from_parts(
            name,
            format!("{kind:?}"),
            &scenario_model(&d, kind),
            &ctrl,
            scenario_justice(&d, kind),
        ));
    }
    input
}

/// Semantic-analysis input for the warehouse domain: the 8-rule book
/// deployed against the floor world, with the four task controllers plus
/// the free controller as the discrimination corpus.
pub fn warehouse_semantic_input() -> SemanticInput {
    let w = WarehouseDomain::new();
    let free = free_controller(
        "free (warehouse)",
        &[w.move_forward, w.pick, w.place, w.wait, w.dock].map(ActSet::singleton),
    );
    let floor = w.floor_model();
    let justice = warehouse_justice(&w);

    let mut input = SemanticInput {
        specs: warehouse_specs(&w),
        vocab: Some(w.vocab.clone()),
        worlds: vec![SemanticWorld::from_parts(
            "WarehouseFloor",
            &floor,
            &free,
            justice.clone(),
        )],
        ..Default::default()
    };
    input.corpus.push(CorpusController::from_parts(
        "free (warehouse)",
        "WarehouseFloor",
        &floor,
        &free,
        justice.clone(),
    ));
    for (name, steps) in WAREHOUSE_STEPS {
        let options = FsaOptions {
            non_blocking: ActSet::singleton(w.wait),
            ..FsaOptions::default()
        };
        let ctrl =
            synthesize(name, steps, &w.lexicon, options).expect("canonical warehouse steps align");
        let ctrl = with_default_action(&ctrl, w.wait);
        input.corpus.push(CorpusController::from_parts(
            name,
            "WarehouseFloor",
            &floor,
            &ctrl,
            justice.clone(),
        ));
    }
    input
}

/// A deliberately broken rule book the semantic gate must reject: both
/// rules are individually satisfiable (the syntactic pass stays silent)
/// but they share no fair path under the world model, so every controller
/// is capped below a perfect score (`SL303`). Used by the CLI exit-code
/// test and as a living example of what the semantic pass adds over the
/// syntactic one.
pub fn conflicting_semantic_input() -> SemanticInput {
    let mut vocab = Vocab::new();
    let at_junction = vocab.add_prop("at junction").expect("fresh vocab");
    vocab.add_act("go").expect("fresh vocab");
    vocab.add_act("wait").expect("fresh vocab");
    let go = vocab.act("go").expect("registered");
    let wait = vocab.act("wait").expect("registered");

    // A one-state world that is always at the junction.
    let mut model = WorldModel::new("junction");
    let s = model.add_state(PropSet::singleton(at_junction));
    model.add_transition(s, s);
    let free = free_controller("free", &[ActSet::singleton(go), ActSet::singleton(wait)]);

    let spec = |name: &str, description: &str, src: &str| Spec {
        name: name.to_owned(),
        description: description.to_owned(),
        formula: parse(src, &vocab).expect("preset formula parses"),
    };
    SemanticInput {
        specs: vec![
            spec("progress", "the robot keeps making progress", "G F go"),
            spec(
                "caution",
                "never proceed while at the junction",
                "G (\"at junction\" -> !go)",
            ),
        ],
        worlds: vec![SemanticWorld::from_parts(
            "junction",
            &model,
            &free,
            Vec::new(),
        )],
        corpus: Vec::new(),
        vocab: Some(vocab),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    /// The acceptance bar: shipped rule books, controllers and step lists
    /// produce **no** `Error` diagnostics.
    #[test]
    fn shipped_content_has_no_errors() {
        for input in [driving_input(), warehouse_input()] {
            let diags = crate::run(&input);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{errors:?}");
        }
    }

    /// Warnings are also absent, so `speclint --deny-warnings` (the CI
    /// gate) passes on shipped content.
    #[test]
    fn shipped_content_has_no_warnings() {
        for input in [driving_input(), warehouse_input()] {
            let diags = crate::run(&input);
            let warnings: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .collect();
            assert!(warnings.is_empty(), "{warnings:?}");
        }
    }

    /// The semantic acceptance bar: shipped rule books are free of
    /// `SL30x` errors and warnings under their deployed worlds and
    /// corpus, so the `--semantic --deny-warnings` CI gate passes.
    #[test]
    fn shipped_rule_books_are_semantically_clean() {
        for input in [driving_semantic_input(), warehouse_semantic_input()] {
            let diags = crate::semantic::analyze(&input);
            let loud: Vec<_> = diags
                .iter()
                .filter(|d| d.severity != Severity::Note)
                .collect();
            assert!(loud.is_empty(), "{loud:?}");
        }
    }

    /// The conflict demo is rejected by the semantic pass (`SL303`
    /// error) but is invisible to the syntactic one — the motivating
    /// example for the whole `SL3xx` family.
    #[test]
    fn conflict_demo_is_rejected_semantically_but_not_syntactically() {
        let input = conflicting_semantic_input();
        let diags = crate::semantic::analyze(&input);
        assert!(
            diags
                .iter()
                .any(|d| d.code.code() == "SL303" && d.severity == Severity::Error),
            "{diags:?}"
        );
        let syntactic = crate::lint_specs(&input.specs, &[], input.vocab.as_ref());
        assert!(
            !syntactic.iter().any(|d| d.severity == Severity::Error),
            "{syntactic:?}"
        );
    }
}
