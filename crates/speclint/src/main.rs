//! speclint CLI: lints the shipped driving and warehouse rule books, the
//! paper's demonstration controllers, and their step lists.
//!
//! ```text
//! speclint [--format human|json] [--deny-warnings] [--semantic]
//!          [--book driving|warehouse|all|conflict-demo]
//! ```
//!
//! The default pass is the syntactic one (`SL0xx`–`SL2xx`). With
//! `--semantic` the CLI instead runs the semantic rule-book analysis
//! (`SL3xx`): satisfiability, world-model vacuity, pairwise conflict,
//! subsumption, and corpus discrimination over the selected books.
//! `--book conflict-demo` selects a deliberately conflicting rule book
//! (never part of `all`) used to demonstrate — and test — that the
//! semantic gate rejects what the syntactic pass cannot see.
//!
//! Diagnostics are emitted in a canonical order (subject, code, element,
//! message), so output is deterministic across runs and suitable for
//! byte-equality checks in CI.
//!
//! Exit status: `0` when clean (notes are always allowed), `1` when any
//! `error` diagnostic fired (or any `warning`, under `--deny-warnings`),
//! `2` on usage errors. The JSON output is a stable object:
//! `{"diagnostics": [{"code", "severity", "subject", "element"?,
//! "message"}, ...], "tally": {"errors", "warnings", "notes"}}`.

// A binary may panic on internal invariants (serializing a value tree).
#![allow(clippy::expect_used)] // ALLOW: a binary may panic on internal invariants.

use serde::{Serialize, Value};
use speclint::presets::{
    conflicting_semantic_input, driving_input, driving_semantic_input, warehouse_input,
    warehouse_semantic_input,
};
use speclint::{sort_diagnostics, Diagnostic, LintInput, Tally};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Book {
    Driving,
    Warehouse,
    All,
    ConflictDemo,
}

struct Options {
    format: Format,
    deny_warnings: bool,
    semantic: bool,
    book: Book,
}

const USAGE: &str = "usage: speclint [--format human|json] [--deny-warnings] [--semantic] \
                     [--book driving|warehouse|all|conflict-demo]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        deny_warnings: false,
        semantic: false,
        book: Book::All,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--semantic" => opts.semantic = true,
            "--book" => {
                let value = args.next().ok_or("--book needs a value")?;
                opts.book = match value.as_str() {
                    "driving" => Book::Driving,
                    "warehouse" => Book::Warehouse,
                    "all" => Book::All,
                    "conflict-demo" => Book::ConflictDemo,
                    other => return Err(format!("unknown book `{other}`")),
                };
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn syntactic_diags(book: Book) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if matches!(book, Book::Driving | Book::All) {
        diags.extend(speclint::run(&driving_input()));
    }
    if matches!(book, Book::Warehouse | Book::All) {
        diags.extend(speclint::run(&warehouse_input()));
    }
    if book == Book::ConflictDemo {
        let semantic = conflicting_semantic_input();
        diags.extend(speclint::run(&LintInput {
            specs: semantic.specs,
            spec_vocab: semantic.vocab,
            ..Default::default()
        }));
    }
    diags
}

fn semantic_diags(book: Book) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if matches!(book, Book::Driving | Book::All) {
        diags.extend(speclint::semantic::analyze(&driving_semantic_input()));
    }
    if matches!(book, Book::Warehouse | Book::All) {
        diags.extend(speclint::semantic::analyze(&warehouse_semantic_input()));
    }
    if book == Book::ConflictDemo {
        diags.extend(speclint::semantic::analyze(&conflicting_semantic_input()));
    }
    diags
}

fn json_report(diags: &[Diagnostic], tally: Tally) -> String {
    let report = Value::Map(vec![
        ("diagnostics".to_owned(), diags.to_value()),
        (
            "tally".to_owned(),
            Value::Map(vec![
                ("errors".to_owned(), tally.errors.to_value()),
                ("warnings".to_owned(), tally.warnings.to_value()),
                ("notes".to_owned(), tally.notes.to_value()),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&report).expect("report is a plain value tree")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut diags = if opts.semantic {
        semantic_diags(opts.book)
    } else {
        syntactic_diags(opts.book)
    };
    sort_diagnostics(&mut diags);
    let tally = Tally::of(&diags);

    match opts.format {
        Format::Json => println!("{}", json_report(&diags, tally)),
        Format::Human => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "speclint: {} error(s), {} warning(s), {} note(s)",
                tally.errors, tally.warnings, tally.notes
            );
        }
    }

    if tally.errors > 0 || (opts.deny_warnings && tally.warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
