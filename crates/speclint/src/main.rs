//! speclint CLI: lints the shipped driving and warehouse rule books, the
//! paper's demonstration controllers, and their step lists.
//!
//! ```text
//! speclint [--format human|json] [--deny-warnings]
//! ```
//!
//! Exit status: `0` when clean (notes are always allowed), `1` when any
//! `error` diagnostic fired (or any `warning`, under `--deny-warnings`),
//! `2` on usage errors. The JSON output is a stable object:
//! `{"diagnostics": [{"code", "severity", "subject", "element"?,
//! "message"}, ...], "tally": {"errors", "warnings", "notes"}}`.

// A binary may panic on internal invariants (serializing a value tree).
#![allow(clippy::expect_used)]

use serde::{Serialize, Value};
use speclint::presets::{driving_input, warehouse_input};
use speclint::{Diagnostic, Tally};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

struct Options {
    format: Format,
    deny_warnings: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format needs a value")?;
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => {
                return Err("usage: speclint [--format human|json] [--deny-warnings]".to_owned())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn json_report(diags: &[Diagnostic], tally: Tally) -> String {
    let report = Value::Map(vec![
        ("diagnostics".to_owned(), diags.to_value()),
        (
            "tally".to_owned(),
            Value::Map(vec![
                ("errors".to_owned(), tally.errors.to_value()),
                ("warnings".to_owned(), tally.warnings.to_value()),
                ("notes".to_owned(), tally.notes.to_value()),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&report).expect("report is a plain value tree")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut diags = speclint::run(&driving_input());
    diags.extend(speclint::run(&warehouse_input()));
    let tally = Tally::of(&diags);

    match opts.format {
        Format::Json => println!("{}", json_report(&diags, tally)),
        Format::Human => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "speclint: {} error(s), {} warning(s), {} note(s)",
                tally.errors, tally.warnings, tally.notes
            );
        }
    }

    if tally.errors > 0 || (opts.deny_warnings && tally.warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
