//! Diagnostic core: stable lint codes, severities, structured locations,
//! and human / JSON rendering.
//!
//! Every analyzer in this crate reports through [`Diagnostic`]. Codes are
//! stable identifiers (`SL001`, `SL101`, ...) that tools and tests may
//! match on; messages are for humans and carry no stability guarantee.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// How serious a finding is.
///
/// `Error` findings make an input unusable as a feedback signal (an
/// unsatisfiable rule fails every controller); `Warning` findings are
/// almost certainly authoring mistakes; `Note` findings are expected in
/// healthy inputs but worth surfacing (e.g. rules that are vacuous in one
/// scenario but binding in another).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; expected in healthy inputs.
    Note,
    /// Probable authoring mistake.
    Warning,
    /// The input is unusable for verification-based feedback.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The catalog of lints. `SL0xx` are specification lints, `SL1xx` are
/// controller/automaton lints, `SL2xx` are parsed-step lints, and
/// `SL3xx` are **semantic** rule-book findings (they reason about the
/// rule's language under the shipped world models and controller corpus,
/// not just about its syntax — see [`crate::semantic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// SL001 — the formula has no satisfying trace; it fails every
    /// controller.
    UnsatisfiableSpec,
    /// SL002 — the formula is a tautology; it passes every controller.
    TautologicalSpec,
    /// SL003 — the formula passes a world vacuously (its antecedent is
    /// unreachable there, or it is a tautology over that graph).
    VacuousPass,
    /// SL004 — two individually satisfiable rules have an unsatisfiable
    /// conjunction; no controller can pass both.
    ConflictingSpecs,
    /// SL005 — one rule implies another, making the implied rule
    /// redundant in the rule book.
    SubsumedSpec,
    /// SL101 — a controller state is unreachable from the initial state.
    UnreachableState,
    /// SL102 — a transition can never fire (its guard requires and
    /// forbids the same proposition, or matches no known observation).
    DeadTransition,
    /// SL103 — a state has overlapping guards leading to different
    /// behaviour; resolution depends on transition order.
    NondeterministicState,
    /// SL104 — a reachable state has no enabled transition for some
    /// observation the world can produce.
    IncompleteState,
    /// SL105 — a state has no outgoing transitions at all (terminal by
    /// design, or a dead end).
    SinkState,
    /// SL106 — vocabulary atoms never referenced by the controller.
    UnusedAtom,
    /// SL201 — a step failed to parse into a guarded observation/action.
    UnparseableStep,
    /// SL202 — a step contains content tokens the lexicon cannot align.
    UnknownToken,
    /// SL203 — a step mentions several actions; only the first takes
    /// effect.
    AmbiguousStep,
    /// SL300 — Büchi emptiness on the spec-only automaton: the rule's
    /// language is empty, so it fails every controller in every world.
    SemUnsatisfiable,
    /// SL301 — the rule has the same verdict for every controller in
    /// some world: it holds with the controller left unconstrained (a
    /// maximally permissive controller already satisfies all fair
    /// paths), or no fair path of the world satisfies it at all. Either
    /// way it cannot rank controllers there.
    SemWorldVacuous,
    /// SL302 — the rule's trigger (the antecedent of its `□(a → …)`
    /// shape) is false on every reachable label of the world's product:
    /// the rule can never fire there.
    SemUnreachableTrigger,
    /// SL303 — two individually realizable rules have no common fair
    /// path in some world: no controller can pass both there, which
    /// silently caps every response's score.
    SemWorldConflict,
    /// SL304 — language containment under every provided world: any
    /// controller satisfying one rule satisfies the other, so the weaker
    /// rule adds no discrimination anywhere the book is deployed.
    SemWorldSubsumed,
    /// SL305 — corpus discrimination: every (or no) controller in the
    /// shipped corpus satisfies the rule, so it contributes zero DPO
    /// ranking power on that corpus.
    SemZeroDiscrimination,
}

impl LintCode {
    /// Every lint in the catalog, in code order.
    pub const ALL: [LintCode; 20] = [
        LintCode::UnsatisfiableSpec,
        LintCode::TautologicalSpec,
        LintCode::VacuousPass,
        LintCode::ConflictingSpecs,
        LintCode::SubsumedSpec,
        LintCode::UnreachableState,
        LintCode::DeadTransition,
        LintCode::NondeterministicState,
        LintCode::IncompleteState,
        LintCode::SinkState,
        LintCode::UnusedAtom,
        LintCode::UnparseableStep,
        LintCode::UnknownToken,
        LintCode::AmbiguousStep,
        LintCode::SemUnsatisfiable,
        LintCode::SemWorldVacuous,
        LintCode::SemUnreachableTrigger,
        LintCode::SemWorldConflict,
        LintCode::SemWorldSubsumed,
        LintCode::SemZeroDiscrimination,
    ];

    /// The stable identifier tools may match on.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnsatisfiableSpec => "SL001",
            LintCode::TautologicalSpec => "SL002",
            LintCode::VacuousPass => "SL003",
            LintCode::ConflictingSpecs => "SL004",
            LintCode::SubsumedSpec => "SL005",
            LintCode::UnreachableState => "SL101",
            LintCode::DeadTransition => "SL102",
            LintCode::NondeterministicState => "SL103",
            LintCode::IncompleteState => "SL104",
            LintCode::SinkState => "SL105",
            LintCode::UnusedAtom => "SL106",
            LintCode::UnparseableStep => "SL201",
            LintCode::UnknownToken => "SL202",
            LintCode::AmbiguousStep => "SL203",
            LintCode::SemUnsatisfiable => "SL300",
            LintCode::SemWorldVacuous => "SL301",
            LintCode::SemUnreachableTrigger => "SL302",
            LintCode::SemWorldConflict => "SL303",
            LintCode::SemWorldSubsumed => "SL304",
            LintCode::SemZeroDiscrimination => "SL305",
        }
    }

    /// Inverse of [`LintCode::code`].
    pub fn from_code(code: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.code() == code)
    }

    /// The severity this lint reports at.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnsatisfiableSpec
            | LintCode::ConflictingSpecs
            | LintCode::UnparseableStep
            | LintCode::SemUnsatisfiable
            | LintCode::SemWorldConflict => Severity::Error,
            LintCode::TautologicalSpec
            | LintCode::UnreachableState
            | LintCode::DeadTransition
            | LintCode::UnknownToken => Severity::Warning,
            // Note, not Warning: the paper's own rule book contains
            // subsuming pairs (e.g. phi_5 ⇒ phi_11) — redundancy does not
            // corrupt the feedback signal, it only adds no discrimination.
            // The per-world and per-corpus semantic findings (SL301/302/
            // 304/305) are Note for the same reason: a healthy rule book
            // legitimately carries scenario-specific rules that bind in
            // one world and are vacuous in another, and rules every
            // template controller satisfies — advisory signal-power
            // findings, not defects that corrupt the ranking.
            LintCode::SubsumedSpec
            | LintCode::VacuousPass
            | LintCode::NondeterministicState
            | LintCode::IncompleteState
            | LintCode::SinkState
            | LintCode::UnusedAtom
            | LintCode::AmbiguousStep
            | LintCode::SemWorldVacuous
            | LintCode::SemUnreachableTrigger
            | LintCode::SemWorldSubsumed
            | LintCode::SemZeroDiscrimination => Severity::Note,
        }
    }

    /// One-line description of what the lint checks.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::UnsatisfiableSpec => "specification is unsatisfiable",
            LintCode::TautologicalSpec => "specification is a tautology",
            LintCode::VacuousPass => "specification passes vacuously",
            LintCode::ConflictingSpecs => "specifications conflict",
            LintCode::SubsumedSpec => "specification is subsumed by another",
            LintCode::UnreachableState => "controller state is unreachable",
            LintCode::DeadTransition => "transition can never fire",
            LintCode::NondeterministicState => "state resolves by transition order",
            LintCode::IncompleteState => "state lacks a transition for a reachable observation",
            LintCode::SinkState => "state has no outgoing transitions",
            LintCode::UnusedAtom => "vocabulary atoms are never referenced",
            LintCode::UnparseableStep => "step does not parse",
            LintCode::UnknownToken => "step contains out-of-lexicon tokens",
            LintCode::AmbiguousStep => "step mentions several actions",
            LintCode::SemUnsatisfiable => "specification language is empty (spec-only automaton)",
            LintCode::SemWorldVacuous => "specification cannot distinguish controllers in a world",
            LintCode::SemUnreachableTrigger => "specification trigger is unreachable in a world",
            LintCode::SemWorldConflict => "specifications have no common fair path in a world",
            LintCode::SemWorldSubsumed => "specification is subsumed under every world model",
            LintCode::SemZeroDiscrimination => "specification has zero ranking power on the corpus",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// What a diagnostic points at: a named subject (a spec, a controller, a
/// step list) and optionally an element within it (a second spec, a
/// state, a step index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The primary subject, e.g. `spec phi_3` or `controller turn right`.
    pub subject: String,
    /// A finer-grained element, e.g. `state 2` or `step 4`.
    pub element: Option<String>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.element {
            Some(el) => write!(f, "{}, {}", self.subject, el),
            None => write!(f, "{}", self.subject),
        }
    }
}

/// A single finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity (defaults to the code's catalog severity).
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(
        code: LintCode,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            location: Location {
                subject: subject.into(),
                element: None,
            },
            message: message.into(),
        }
    }

    /// Attaches a finer-grained element to the location.
    pub fn element(mut self, element: impl Into<String>) -> Diagnostic {
        self.location.element = Some(element.into());
        self
    }

    /// Renders the classic compiler-style one-liner.
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

// The JSON schema is flat and stable: {"code", "severity", "subject",
// "element"?, "message"}. Hand-written (rather than derived) so the
// nested `Location` flattens and the schema cannot drift by refactor.
impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("code".to_string(), Value::Str(self.code.code().to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.to_string()),
            ),
            (
                "subject".to_string(),
                Value::Str(self.location.subject.clone()),
            ),
        ];
        if let Some(el) = &self.location.element {
            entries.push(("element".to_string(), Value::Str(el.clone())));
        }
        entries.push(("message".to_string(), Value::Str(self.message.clone())));
        Value::Map(entries)
    }
}

impl Deserialize for Diagnostic {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let code_str = String::from_value(v.field("code")?)?;
        let code = LintCode::from_code(&code_str)
            .ok_or_else(|| SerdeError::new(format!("unknown lint code `{code_str}`")))?;
        let element = match v.field("element") {
            Ok(el) => Some(String::from_value(el)?),
            Err(_) => None,
        };
        let severity = match String::from_value(v.field("severity")?)?.as_str() {
            "note" => Severity::Note,
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            other => return Err(SerdeError::new(format!("unknown severity `{other}`"))),
        };
        Ok(Diagnostic {
            code,
            severity,
            location: Location {
                subject: String::from_value(v.field("subject")?)?,
                element,
            },
            message: String::from_value(v.field("message")?)?,
        })
    }
}

/// Sorts diagnostics into the canonical report order: by subject, then
/// lint code, then element, then message.
///
/// Analyzers emit findings in analysis order, which is convenient for
/// them but an implementation detail for consumers; the CLI's human and
/// JSON output sort through this function so reports are deterministic
/// across runs and insensitive to analyzer scheduling. The sort is
/// stable, so equal keys keep their emission order. Semantic (`SL3xx`)
/// codes slot into the same ordering as every other code.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (
            &a.location.subject,
            a.code.code(),
            &a.location.element,
            &a.message,
        )
            .cmp(&(
                &b.location.subject,
                b.code.code(),
                &b.location.element,
                &b.message,
            ))
    });
}

/// Counts by severity, for exit-code and summary decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Number of `Error` diagnostics.
    pub errors: usize,
    /// Number of `Warning` diagnostics.
    pub warnings: usize,
    /// Number of `Note` diagnostics.
    pub notes: usize,
}

impl Tally {
    /// Tallies a diagnostic list.
    pub fn of(diags: &[Diagnostic]) -> Tally {
        let mut t = Tally::default();
        for d in diags {
            match d.severity {
                Severity::Error => t.errors += 1,
                Severity::Warning => t.warnings += 1,
                Severity::Note => t.notes += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_invertible() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::from_code(code.code()), Some(code));
        }
        let mut codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LintCode::ALL.len());
    }

    #[test]
    fn render_is_compiler_style() {
        let d = Diagnostic::new(LintCode::UnsatisfiableSpec, "spec phi_1", "no model exists")
            .element("conjunct 2");
        assert_eq!(
            d.render(),
            "error[SL001]: spec phi_1, conjunct 2: no model exists"
        );
    }

    #[test]
    fn json_round_trip_preserves_fields() {
        let d = Diagnostic::new(LintCode::DeadTransition, "controller free", "guard p & !p")
            .element("transition 3");
        let json = serde_json::to_string(&d).expect("serializes");
        assert!(json.contains("\"code\":\"SL102\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
        assert!(json.contains("\"subject\":\"controller free\""), "{json}");
        let back: Diagnostic = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, d);
    }

    #[test]
    fn sort_is_canonical_and_idempotent() {
        let mk = |code, subject: &str, element: Option<&str>| {
            let d = Diagnostic::new(code, subject, "m");
            match element {
                Some(el) => d.element(el),
                None => d,
            }
        };
        let mut diags = vec![
            mk(LintCode::SemWorldVacuous, "spec phi_2", Some("world B")),
            mk(LintCode::UnsatisfiableSpec, "spec phi_2", None),
            mk(LintCode::SemWorldVacuous, "spec phi_2", Some("world A")),
            mk(LintCode::SinkState, "controller x", Some("state 1")),
            mk(LintCode::SemUnsatisfiable, "spec phi_1", None),
        ];
        sort_diagnostics(&mut diags);
        let keys: Vec<(&str, &str)> = diags
            .iter()
            .map(|d| (d.location.subject.as_str(), d.code.code()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("controller x", "SL105"),
                ("spec phi_1", "SL300"),
                ("spec phi_2", "SL001"),
                ("spec phi_2", "SL301"),
                ("spec phi_2", "SL301"),
            ]
        );
        // Elements break ties deterministically.
        assert_eq!(diags[3].location.element.as_deref(), Some("world A"));
        let again = {
            let mut copy = diags.clone();
            sort_diagnostics(&mut copy);
            copy
        };
        assert_eq!(diags, again);
    }

    #[test]
    fn severity_ordering_supports_max() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
