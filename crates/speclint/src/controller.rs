//! Controller/automaton lints (`SL1xx`): reachability, dead transitions,
//! nondeterminism, incompleteness, sinks, and unused vocabulary atoms.
//!
//! All checks are purely structural — no product construction or model
//! checking — so they run in milliseconds even on controllers whose
//! product automata would be large.

use crate::diagnostics::{Diagnostic, LintCode};
use autokit::{Controller, CtrlTransition, PropSet, Vocab};
use std::collections::VecDeque;

/// Extra context for controller lints.
///
/// Both fields are optional: without a vocabulary, findings fall back to
/// numeric ids and the unused-atom lint is skipped; without an observation
/// set, dead-transition and incomplete-state checks consider only the
/// guard syntax (a guard that requires and forbids the same proposition)
/// rather than what the world can actually produce.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerContext<'a> {
    /// Vocabulary for rendering propositions/actions by name and for the
    /// unused-atom lint.
    pub vocab: Option<&'a Vocab>,
    /// Observations the environment can produce (e.g. the label sets of a
    /// world model's states). Enables the stronger dead-transition check
    /// and the incomplete-state check.
    pub observations: Option<&'a [PropSet]>,
}

/// `true` iff the transition can ever fire: its guard is not
/// self-contradictory and, when an observation set is known, at least one
/// observation satisfies it.
fn can_fire(t: &CtrlTransition, observations: Option<&[PropSet]>) -> bool {
    if t.guard.is_contradictory() {
        return false;
    }
    match observations {
        Some(obs) => obs.iter().any(|&sigma| t.guard.matches(sigma)),
        None => true,
    }
}

/// States reachable from the initial state via transitions that can fire.
fn reachable_states(ctrl: &Controller, observations: Option<&[PropSet]>) -> Vec<bool> {
    let mut seen = vec![false; ctrl.num_states()];
    let mut queue = VecDeque::new();
    seen[ctrl.initial()] = true;
    queue.push_back(ctrl.initial());
    while let Some(state) = queue.pop_front() {
        for t in ctrl.outgoing(state) {
            if can_fire(t, observations) && !seen[t.to] {
                seen[t.to] = true;
                queue.push_back(t.to);
            }
        }
    }
    seen
}

/// `true` iff the two guards can be satisfied by the same symbol.
fn guards_overlap(a: autokit::Guard, b: autokit::Guard) -> bool {
    ((a.pos | b.pos) & (a.neg | b.neg)).is_empty()
}

/// Lints a controller.
pub fn lint_controller(ctrl: &Controller, ctx: ControllerContext<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let subject = format!("controller {}", ctrl.name());
    let reachable = reachable_states(ctrl, ctx.observations);

    // SL101 — unreachable states.
    for state in (0..ctrl.num_states()).filter(|&s| !reachable[s]) {
        diags.push(
            Diagnostic::new(
                LintCode::UnreachableState,
                &subject,
                format!(
                    "state {state} cannot be reached from initial state {}",
                    ctrl.initial()
                ),
            )
            .element(format!("state {state}")),
        );
    }

    // SL102 — dead transitions.
    for (i, t) in ctrl.transitions().iter().enumerate() {
        if can_fire(t, ctx.observations) {
            continue;
        }
        let why = if t.guard.is_contradictory() {
            "its guard requires and forbids the same proposition".to_string()
        } else {
            "no known observation satisfies its guard".to_string()
        };
        diags.push(
            Diagnostic::new(
                LintCode::DeadTransition,
                &subject,
                format!(
                    "transition {i} ({} -> {}) can never fire: {why}",
                    t.from, t.to
                ),
            )
            .element(format!("transition {i}")),
        );
    }

    // SL103 — nondeterministic states: two live transitions from the same
    // state whose guards overlap but whose effects differ. One aggregate
    // finding per state keeps a heavily branching state from flooding the
    // report.
    for state in 0..ctrl.num_states() {
        let live: Vec<&CtrlTransition> = ctrl
            .outgoing(state)
            .filter(|t| can_fire(t, ctx.observations))
            .collect();
        let mut overlapping = 0usize;
        for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                let (a, b) = (live[i], live[j]);
                if (a.action != b.action || a.to != b.to) && guards_overlap(a.guard, b.guard) {
                    overlapping += 1;
                }
            }
        }
        if overlapping > 0 {
            diags.push(
                Diagnostic::new(
                    LintCode::NondeterministicState,
                    &subject,
                    format!(
                        "state {state} has {overlapping} overlapping guard pair(s) with \
                         different effects; behaviour depends on transition order"
                    ),
                )
                .element(format!("state {state}")),
            );
        }
    }

    // SL104 — incomplete states: a reachable, non-sink state where some
    // observation the world can produce enables nothing. Needs the
    // observation set; without it every non-trivial guard would flag.
    if let Some(observations) = ctx.observations {
        for state in (0..ctrl.num_states()).filter(|&s| reachable[s]) {
            if ctrl.outgoing(state).next().is_none() {
                continue;
            }
            if let Some(&sigma) = observations
                .iter()
                .find(|&&sigma| !ctrl.has_enabled(state, sigma))
            {
                let shown = match ctx.vocab {
                    Some(v) => v.display_props(sigma),
                    None => format!("{sigma:?}"),
                };
                diags.push(
                    Diagnostic::new(
                        LintCode::IncompleteState,
                        &subject,
                        format!(
                            "state {state} has no enabled transition under observation \
                             `{shown}`; the product deadlocks or stutters there"
                        ),
                    )
                    .element(format!("state {state}")),
                );
            }
        }
    }

    // SL105 — sink states (reachable ones; unreachable sinks are already
    // covered by SL101).
    for state in ctrl.terminal_states() {
        if reachable[state] {
            diags.push(
                Diagnostic::new(
                    LintCode::SinkState,
                    &subject,
                    format!("state {state} has no outgoing transitions"),
                )
                .element(format!("state {state}")),
            );
        }
    }

    // SL106 — unused vocabulary atoms, as one aggregate note.
    if let Some(vocab) = ctx.vocab {
        let mut used_props = PropSet::empty();
        let mut used_acts = autokit::ActSet::empty();
        for t in ctrl.transitions() {
            used_props = used_props | t.guard.pos | t.guard.neg;
            used_acts = used_acts | t.action;
        }
        let unused_props: Vec<&str> = vocab
            .props()
            .filter(|&p| !used_props.contains(p))
            .map(|p| vocab.prop_name(p))
            .collect();
        let unused_acts: Vec<&str> = vocab
            .acts()
            .filter(|&a| !used_acts.contains(a))
            .map(|a| vocab.act_name(a))
            .collect();
        if !unused_props.is_empty() || !unused_acts.is_empty() {
            let mut parts = Vec::new();
            if !unused_props.is_empty() {
                parts.push(format!("propositions [{}]", unused_props.join(", ")));
            }
            if !unused_acts.is_empty() {
                parts.push(format!("actions [{}]", unused_acts.join(", ")));
            }
            diags.push(Diagnostic::new(
                LintCode::UnusedAtom,
                &subject,
                format!("never references {}", parts.join(" or ")),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::{ActSet, ControllerBuilder, Guard};

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("p").expect("fresh");
        v.add_prop("q").expect("fresh");
        v.add_act("go").expect("fresh");
        v.add_act("stop").expect("fresh");
        v
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn sl101_flags_unreachable_state() {
        let v = vocab();
        let go = v.act("go").expect("registered");
        // State 2 has no incoming transition.
        let ctrl = ControllerBuilder::new("orphan", 3)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .transition(1, Guard::always(), ActSet::empty(), 0)
            .transition(2, Guard::always(), ActSet::empty(), 0)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::UnreachableState)
            .collect();
        assert_eq!(unreachable.len(), 1, "{diags:?}");
        assert_eq!(unreachable[0].location.element.as_deref(), Some("state 2"));
    }

    #[test]
    fn sl101_negative_on_connected_controller() {
        let v = vocab();
        let go = v.act("go").expect("registered");
        let ctrl = ControllerBuilder::new("ring", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .transition(1, Guard::always(), ActSet::empty(), 0)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        assert!(!codes(&diags).contains(&"SL101"), "{diags:?}");
    }

    #[test]
    fn sl102_flags_contradictory_guard() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let ctrl = ControllerBuilder::new("dead", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 0)
            .transition(
                0,
                Guard::always().requires(p).forbids(p),
                ActSet::empty(),
                0,
            )
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::DeadTransition)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("requires and forbids"));
    }

    #[test]
    fn sl102_flags_guard_outside_observation_set() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let q = v.prop("q").expect("registered");
        let ctrl = ControllerBuilder::new("unworldly", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 0)
            .transition(0, Guard::always().requires(q), ActSet::empty(), 0)
            .build()
            .expect("well-formed");
        // The world only ever shows `p` or nothing — never `q`.
        let obs = [PropSet::empty(), PropSet::singleton(p)];
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: Some(&obs),
            },
        );
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::DeadTransition)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("no known observation"));
    }

    #[test]
    fn sl102_negative_on_live_guards() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let ctrl = ControllerBuilder::new("live", 1)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::empty(), 0)
            .transition(0, Guard::always().forbids(p), ActSet::empty(), 0)
            .build()
            .expect("well-formed");
        let obs = [PropSet::empty(), PropSet::singleton(p)];
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: Some(&obs),
            },
        );
        assert!(!codes(&diags).contains(&"SL102"), "{diags:?}");
    }

    #[test]
    fn sl103_flags_overlapping_guards_with_different_effects() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let go = v.act("go").expect("registered");
        let stop = v.act("stop").expect("registered");
        // Both guards match the observation `p`: always() and requires(p).
        let ctrl = ControllerBuilder::new("racy", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(stop), 0)
            .transition(0, Guard::always().requires(p), ActSet::singleton(go), 1)
            .transition(1, Guard::always(), ActSet::empty(), 1)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        assert!(codes(&diags).contains(&"SL103"), "{diags:?}");
    }

    #[test]
    fn sl103_negative_on_disjoint_guards() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let go = v.act("go").expect("registered");
        let stop = v.act("stop").expect("registered");
        let ctrl = ControllerBuilder::new("det", 2)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::singleton(go), 1)
            .transition(0, Guard::always().forbids(p), ActSet::singleton(stop), 0)
            .transition(1, Guard::always(), ActSet::empty(), 1)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        assert!(!codes(&diags).contains(&"SL103"), "{diags:?}");
    }

    #[test]
    fn sl104_flags_observation_with_no_enabled_transition() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let go = v.act("go").expect("registered");
        // Only moves when `p` holds; the empty observation strands it.
        let ctrl = ControllerBuilder::new("picky", 1)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::singleton(go), 0)
            .build()
            .expect("well-formed");
        let obs = [PropSet::empty(), PropSet::singleton(p)];
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: Some(&obs),
            },
        );
        assert!(codes(&diags).contains(&"SL104"), "{diags:?}");
    }

    #[test]
    fn sl104_negative_on_complete_state() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let go = v.act("go").expect("registered");
        let stop = v.act("stop").expect("registered");
        let ctrl = ControllerBuilder::new("total", 1)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::singleton(go), 0)
            .transition(0, Guard::always().forbids(p), ActSet::singleton(stop), 0)
            .build()
            .expect("well-formed");
        let obs = [PropSet::empty(), PropSet::singleton(p)];
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: Some(&obs),
            },
        );
        assert!(!codes(&diags).contains(&"SL104"), "{diags:?}");
    }

    #[test]
    fn sl105_flags_reachable_sink() {
        let v = vocab();
        let go = v.act("go").expect("registered");
        let ctrl = ControllerBuilder::new("dead-end", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        let sinks: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::SinkState)
            .collect();
        assert_eq!(sinks.len(), 1, "{diags:?}");
        assert_eq!(sinks[0].location.element.as_deref(), Some("state 1"));
    }

    #[test]
    fn sl105_negative_and_unreachable_sink_not_double_reported() {
        let v = vocab();
        let go = v.act("go").expect("registered");
        // State 1 is an unreachable sink: SL101 only, not SL105.
        let ctrl = ControllerBuilder::new("loop", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 0)
            .build()
            .expect("well-formed");
        let diags = lint_controller(&ctrl, ControllerContext::default());
        assert!(codes(&diags).contains(&"SL101"), "{diags:?}");
        assert!(!codes(&diags).contains(&"SL105"), "{diags:?}");
    }

    #[test]
    fn sl106_flags_unused_atoms_in_one_note() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let go = v.act("go").expect("registered");
        let ctrl = ControllerBuilder::new("narrow", 1)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::singleton(go), 0)
            .build()
            .expect("well-formed");
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: None,
            },
        );
        let unused: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::UnusedAtom)
            .collect();
        assert_eq!(unused.len(), 1, "{diags:?}");
        assert!(unused[0].message.contains('q'), "{diags:?}");
        assert!(unused[0].message.contains("stop"), "{diags:?}");
    }

    #[test]
    fn sl106_negative_when_every_atom_is_referenced() {
        let v = vocab();
        let p = v.prop("p").expect("registered");
        let q = v.prop("q").expect("registered");
        let go = v.act("go").expect("registered");
        let stop = v.act("stop").expect("registered");
        let ctrl = ControllerBuilder::new("full", 1)
            .initial(0)
            .transition(
                0,
                Guard::always().requires(p).forbids(q),
                ActSet::singleton(go),
                0,
            )
            .transition(0, Guard::always().requires(q), ActSet::singleton(stop), 0)
            .build()
            .expect("well-formed");
        let diags = lint_controller(
            &ctrl,
            ControllerContext {
                vocab: Some(&v),
                observations: None,
            },
        );
        assert!(!codes(&diags).contains(&"SL106"), "{diags:?}");
    }
}
