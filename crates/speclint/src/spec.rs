//! Specification lints (`SL0xx`): satisfiability, tautology, vacuity,
//! pairwise conflict, and redundancy/subsumption over a rule book.
//!
//! These lift the per-formula checks from `ltlcheck::analysis` to whole
//! rule books. All checks reduce to Büchi emptiness on (combinations of)
//! the rules, so they need no controller: a rule book can be vetted
//! before any synthesis or model checking happens.

use crate::diagnostics::{Diagnostic, LintCode};
use autokit::{LabelGraph, Vocab};
use ltlcheck::analysis::{satisfiable, vacuous_pass, valid, Vacuity};
use ltlcheck::specs::Spec;
use ltlcheck::Ltl;

/// Pairwise checks build the Büchi automaton of a conjunction, which is
/// worst-case exponential in formula size. Pairs whose combined
/// [`Ltl::size`] exceeds this budget are skipped and reported via a
/// single note so the omission is visible rather than silent.
pub const PAIRWISE_SIZE_BUDGET: usize = 96;

/// Lints a rule book.
///
/// * `specs` — the rules.
/// * `graphs` — named label graphs (typically products of each scenario's
///   world model with a maximally permissive controller) used for
///   vacuity analysis; pass `&[]` to skip vacuity.
/// * `vocab` — used to pretty-print formulas in messages when available.
pub fn lint_specs(
    specs: &[Spec],
    graphs: &[(String, LabelGraph)],
    vocab: Option<&Vocab>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let render = |phi: &Ltl| -> String {
        match vocab {
            Some(v) => phi.to_string(v),
            None => format!("{phi:?}"),
        }
    };

    // Per-rule checks: satisfiability, tautology, vacuity.
    let mut sat = Vec::with_capacity(specs.len());
    for spec in specs {
        let subject = format!("spec {}", spec.name);
        let is_sat = satisfiable(&spec.formula);
        sat.push(is_sat);
        if !is_sat {
            diags.push(Diagnostic::new(
                LintCode::UnsatisfiableSpec,
                &subject,
                format!(
                    "`{}` has no satisfying trace; it fails every controller",
                    render(&spec.formula)
                ),
            ));
            // Tautology/vacuity checks on an unsatisfiable rule would
            // only restate the problem.
            continue;
        }
        if valid(&spec.formula) {
            diags.push(Diagnostic::new(
                LintCode::TautologicalSpec,
                &subject,
                format!(
                    "`{}` holds on every trace; it passes every controller",
                    render(&spec.formula)
                ),
            ));
            continue;
        }
        for (graph_name, graph) in graphs {
            match vacuous_pass(graph, &spec.formula) {
                Some(Vacuity::UnreachableAntecedent(antecedent)) => {
                    diags.push(
                        Diagnostic::new(
                            LintCode::VacuousPass,
                            &subject,
                            format!(
                                "antecedent `{}` is unreachable in `{graph_name}`; the rule does \
                                 not constrain that world",
                                render(&antecedent)
                            ),
                        )
                        .element(format!("world {graph_name}")),
                    );
                }
                Some(Vacuity::Tautology) => {
                    diags.push(
                        Diagnostic::new(
                            LintCode::VacuousPass,
                            &subject,
                            format!("the rule is tautological over `{graph_name}`"),
                        )
                        .element(format!("world {graph_name}")),
                    );
                }
                None => {}
            }
        }
    }

    // Pairwise checks: conflict and subsumption. Only pairs of
    // individually satisfiable rules are interesting — an unsatisfiable
    // rule already carries SL001 and would conflict with everything.
    let mut skipped_pairs = 0usize;
    for i in 0..specs.len() {
        for j in (i + 1)..specs.len() {
            if !sat[i] || !sat[j] {
                continue;
            }
            let (a, b) = (&specs[i], &specs[j]);
            if a.formula.size() + b.formula.size() > PAIRWISE_SIZE_BUDGET {
                skipped_pairs += 1;
                continue;
            }
            let both = Ltl::and(a.formula.clone(), b.formula.clone());
            if !satisfiable(&both) {
                diags.push(
                    Diagnostic::new(
                        LintCode::ConflictingSpecs,
                        format!("spec {}", a.name),
                        format!(
                            "`{}` and `{}` cannot hold together; no controller can pass both",
                            a.name, b.name
                        ),
                    )
                    .element(format!("spec {}", b.name)),
                );
                // Subsumption between conflicting rules is meaningless.
                continue;
            }
            let a_implies_b =
                !satisfiable(&Ltl::and(a.formula.clone(), Ltl::not(b.formula.clone())));
            let b_implies_a =
                !satisfiable(&Ltl::and(b.formula.clone(), Ltl::not(a.formula.clone())));
            match (a_implies_b, b_implies_a) {
                (true, true) => diags.push(
                    Diagnostic::new(
                        LintCode::SubsumedSpec,
                        format!("spec {}", b.name),
                        format!(
                            "`{}` and `{}` are equivalent; one is redundant",
                            a.name, b.name
                        ),
                    )
                    .element(format!("spec {}", a.name)),
                ),
                (true, false) => diags.push(
                    Diagnostic::new(
                        LintCode::SubsumedSpec,
                        format!("spec {}", b.name),
                        format!(
                            "`{}` already implies `{}`; the weaker rule adds nothing",
                            a.name, b.name
                        ),
                    )
                    .element(format!("spec {}", a.name)),
                ),
                (false, true) => diags.push(
                    Diagnostic::new(
                        LintCode::SubsumedSpec,
                        format!("spec {}", a.name),
                        format!(
                            "`{}` already implies `{}`; the weaker rule adds nothing",
                            b.name, a.name
                        ),
                    )
                    .element(format!("spec {}", b.name)),
                ),
                (false, false) => {}
            }
        }
    }
    if skipped_pairs > 0 {
        diags.push(Diagnostic::new(
            LintCode::SubsumedSpec,
            "rule book",
            format!(
                "{skipped_pairs} spec pair(s) exceeded the pairwise size budget \
                 ({PAIRWISE_SIZE_BUDGET}) and were not checked for conflict/subsumption"
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::{ActSet, ControllerBuilder, DeadlockPolicy, Guard, Product, PropSet, WorldModel};
    use ltlcheck::parse;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").expect("fresh");
        v.add_prop("b").expect("fresh");
        v.add_act("go").expect("fresh");
        v
    }

    fn spec(name: &str, v: &Vocab, src: &str) -> Spec {
        Spec {
            name: name.to_string(),
            description: String::new(),
            formula: parse(src, v).expect("parses"),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn sl001_flags_unsatisfiable_spec() {
        let v = vocab();
        let specs = [spec("bad", &v, "F (a & !a)")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert_eq!(codes(&diags), vec!["SL001"]);
        assert_eq!(diags[0].location.subject, "spec bad");
    }

    #[test]
    fn sl001_negative_on_satisfiable_spec() {
        let v = vocab();
        let specs = [spec("ok", &v, "G (a -> F b)")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sl002_flags_tautology() {
        let v = vocab();
        let specs = [spec("trivial", &v, "G (a | !a)")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert_eq!(codes(&diags), vec!["SL002"]);
    }

    #[test]
    fn sl002_negative_on_contingent_spec() {
        let v = vocab();
        let specs = [spec("contingent", &v, "G (a -> X b)")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(codes(&diags).is_empty(), "{diags:?}");
    }

    /// A one-state world where only `b` holds, under a one-state free
    /// controller: `a` never occurs, so `G (a -> F b)` passes vacuously.
    fn b_only_graph(v: &Vocab) -> LabelGraph {
        let b = v.prop("b").expect("registered");
        let go = v.act("go").expect("registered");
        let mut model = WorldModel::new("b-only");
        let s = model.add_state(PropSet::singleton(b));
        model.add_transition(s, s);
        let ctrl = ControllerBuilder::new("free", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 0)
            .build()
            .expect("well-formed");
        Product::build(&model, &ctrl).label_graph(DeadlockPolicy::Stutter)
    }

    #[test]
    fn sl003_flags_vacuous_pass() {
        let v = vocab();
        let specs = [spec("guarded", &v, "G (a -> F b)")];
        let graphs = vec![("b-only".to_string(), b_only_graph(&v))];
        let diags = lint_specs(&specs, &graphs, Some(&v));
        assert_eq!(codes(&diags), vec!["SL003"]);
        assert!(diags[0].message.contains("unreachable"), "{diags:?}");
    }

    #[test]
    fn sl003_negative_when_antecedent_reachable() {
        let v = vocab();
        // The antecedent `b` occurs in the graph, so no vacuity.
        let specs = [spec("binding", &v, "G (b -> b)")];
        let graphs = vec![("b-only".to_string(), b_only_graph(&v))];
        let diags = lint_specs(&specs, &graphs, Some(&v));
        // `G (b -> b)` is a tautology — accept SL002 but not SL003.
        assert!(
            !codes(&diags).contains(&"SL003"),
            "reachable antecedent must not be vacuous: {diags:?}"
        );
    }

    #[test]
    fn sl004_flags_conflicting_pair() {
        let v = vocab();
        let specs = [spec("always_a", &v, "G a"), spec("never_a", &v, "G !a")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(codes(&diags).contains(&"SL004"), "{diags:?}");
    }

    #[test]
    fn sl004_negative_on_compatible_pair() {
        let v = vocab();
        let specs = [spec("live_a", &v, "G F a"), spec("live_b", &v, "G F b")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(!codes(&diags).contains(&"SL004"), "{diags:?}");
    }

    #[test]
    fn sl005_flags_subsumed_spec() {
        let v = vocab();
        let specs = [spec("strong", &v, "G a"), spec("weak", &v, "F a")];
        let diags = lint_specs(&specs, &[], Some(&v));
        let subsumed: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::SubsumedSpec)
            .collect();
        assert_eq!(subsumed.len(), 1, "{diags:?}");
        // The weaker rule is the subject of the finding.
        assert_eq!(subsumed[0].location.subject, "spec weak");
    }

    #[test]
    fn sl005_negative_on_independent_specs() {
        let v = vocab();
        let specs = [spec("about_a", &v, "G F a"), spec("about_b", &v, "G F b")];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(!codes(&diags).contains(&"SL005"), "{diags:?}");
    }

    #[test]
    fn oversized_pairs_are_reported_not_silent() {
        let v = vocab();
        // Build two formulas big enough to blow the pairwise budget.
        let mut big_a = "G F a".to_string();
        let mut big_b = "G F b".to_string();
        for _ in 0..30 {
            big_a = format!("({big_a}) & G F a");
            big_b = format!("({big_b}) & G F b");
        }
        let specs = [spec("big_a", &v, &big_a), spec("big_b", &v, &big_b)];
        let diags = lint_specs(&specs, &[], Some(&v));
        assert!(
            diags.iter().any(|d| d.message.contains("size budget")),
            "{diags:?}"
        );
    }
}
