//! Semantic rule-book analysis (`SL3xx`): satisfiability, world-model
//! vacuity, pairwise conflict, subsumption, and corpus discrimination.
//!
//! The syntactic spec lints ([`crate::spec`]) reason about each rule's
//! *language* in isolation. This module asks the question that actually
//! matters for DPO-AF: **does the rule carry ranking signal** once it is
//! deployed against the shipped world models and checked over real
//! controllers? A rule can be perfectly well-formed and still contribute
//! nothing (or worse, corrupt the preference ordering):
//!
//! * **SL300** — the rule's language is empty (Büchi emptiness on the
//!   spec-only automaton): it fails every controller, uniformly
//!   depressing every score. `Error`.
//! * **SL301** — in some world the rule has the same verdict for every
//!   controller: it holds with the controller left unconstrained (the
//!   maximally permissive controller satisfies it on all fair paths), or
//!   no fair path of the world satisfies it at all. Zero discrimination
//!   in that world. `Note` — scenario-specific rules legitimately bind
//!   in one world and idle in another.
//! * **SL302** — the refinement of SL301 for `□(trigger → …)` rules
//!   whose trigger is false on every reachable label of the world's
//!   product: the rule can never fire there. `Note`.
//! * **SL303** — two individually realizable rules have no common fair
//!   path in some world: no controller can pass both, silently capping
//!   every score in that world. `Error`.
//! * **SL304** — language containment under *every* provided world:
//!   satisfying one rule implies satisfying the other everywhere the
//!   book is deployed, so the weaker rule adds no discrimination.
//!   `Note` — the paper's own rule book contains such pairs.
//! * **SL305** — corpus discrimination: every (or no) controller in the
//!   shipped corpus satisfies the rule; satisfied/violated counts are in
//!   the diagnostic. A rule that cannot split the corpus contributes
//!   zero DPO ranking power. `Note`.
//!
//! All checks reduce to existential or universal model checking through
//! [`ltlcheck::analysis`]'s cached spec-automaton API
//! ([`ltlcheck::analysis::exists_fair_path`] /
//! [`ltlcheck::analysis::holds_fair`]), so sweeping one rule book over
//! five scenario worlds builds each automaton once. Per-rule wall time is
//! tracked ([`RuleTiming`]) because semantic analysis is inherently more
//! expensive than linting — the `specsem` bench reports the numbers.
//!
//! Severity counts and check totals are mirrored to the obskit counters
//! `speclint.semantic_rules`, `speclint.semantic_checks`,
//! `speclint.semantic_errors`, `speclint.semantic_warnings`,
//! `speclint.semantic_notes`.

use crate::diagnostics::{Diagnostic, LintCode};
use crate::spec::PAIRWISE_SIZE_BUDGET;
use autokit::{
    ActSet, Controller, DeadlockPolicy, LabelGraph, Product, PropSet, Vocab, WorldModel,
};
use ltlcheck::analysis::{
    eval_propositional, exists_fair_path, holds_fair, reachable_labels, satisfiable,
};
use ltlcheck::specs::Spec;
use ltlcheck::{Justice, Ltl};
use std::time::{Duration, Instant};

/// A world a rule book is deployed against: the product of a scenario's
/// world model with a maximally permissive controller, plus the justice
/// assumptions verification runs under.
#[derive(Debug, Clone)]
pub struct SemanticWorld {
    /// Display name, e.g. the scenario kind.
    pub name: String,
    /// Label graph of `world model ⊗ free controller`.
    pub graph: LabelGraph,
    /// Justice assumptions used when verifying in this world.
    pub justice: Vec<Justice>,
}

impl SemanticWorld {
    /// Builds the world from a model and a (typically maximally
    /// permissive) controller with the standard stutter deadlock policy.
    pub fn from_parts(
        name: impl Into<String>,
        model: &WorldModel,
        free: &Controller,
        justice: Vec<Justice>,
    ) -> SemanticWorld {
        SemanticWorld {
            name: name.into(),
            graph: Product::build(model, free).label_graph(DeadlockPolicy::Stutter),
            justice,
        }
    }
}

/// One controller of the discrimination corpus, pre-composed with the
/// world model it is verified in.
#[derive(Debug, Clone)]
pub struct CorpusController {
    /// Display name, e.g. the task prompt or template style.
    pub name: String,
    /// Name of the world the controller is checked in.
    pub world: String,
    /// Label graph of `world model ⊗ controller`.
    pub graph: LabelGraph,
    /// Justice assumptions for that world.
    pub justice: Vec<Justice>,
}

impl CorpusController {
    /// Builds a corpus entry from a model and controller with the
    /// standard stutter deadlock policy.
    pub fn from_parts(
        name: impl Into<String>,
        world: impl Into<String>,
        model: &WorldModel,
        ctrl: &Controller,
        justice: Vec<Justice>,
    ) -> CorpusController {
        CorpusController {
            name: name.into(),
            world: world.into(),
            graph: Product::build(model, ctrl).label_graph(DeadlockPolicy::Stutter),
            justice,
        }
    }
}

/// Everything [`analyze`] needs: the rule book, the worlds it is
/// deployed against, and the controller corpus it is meant to rank.
#[derive(Debug, Clone, Default)]
pub struct SemanticInput {
    /// The rule book.
    pub specs: Vec<Spec>,
    /// The worlds the book is verified in (empty disables SL301–SL304).
    pub worlds: Vec<SemanticWorld>,
    /// The controller corpus (empty disables SL305).
    pub corpus: Vec<CorpusController>,
    /// Vocabulary for rendering formulas in messages.
    pub vocab: Option<Vocab>,
}

/// Wall-clock cost of one rule's semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTiming {
    /// The rule's name.
    pub rule: String,
    /// Satisfiability + per-world vacuity/realizability checks.
    pub solo: Duration,
    /// This rule's share of pairwise conflict/containment checks (each
    /// pair's cost is attributed to both of its rules).
    pub pairwise: Duration,
    /// Corpus discrimination checks.
    pub corpus: Duration,
}

impl RuleTiming {
    /// Total attributed time.
    pub fn total(&self) -> Duration {
        self.solo + self.pairwise + self.corpus
    }
}

/// The full result of a semantic pass.
#[derive(Debug, Clone)]
pub struct SemanticReport {
    /// The findings, in emission order (sort with
    /// [`crate::diagnostics::sort_diagnostics`] for canonical output).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule wall-clock cost, in rule-book order.
    pub timings: Vec<RuleTiming>,
    /// Number of model-checking queries issued.
    pub checks: usize,
}

/// The trigger of a `□(a → b)`-shaped rule. `□(a → b)` desugars to
/// `Release(False, Or(Not(a), b))`.
fn trigger_of(phi: &Ltl) -> Option<&Ltl> {
    if let Ltl::Release(l, r) = phi {
        if **l == Ltl::False {
            if let Ltl::Or(not_a, _) = &**r {
                if let Ltl::Not(a) = &**not_a {
                    return Some(a);
                }
            }
        }
    }
    None
}

/// Runs the semantic pass and returns just the findings.
pub fn analyze(input: &SemanticInput) -> Vec<Diagnostic> {
    analyze_timed(input).diagnostics
}

/// Runs the semantic pass with per-rule timings and check counts.
pub fn analyze_timed(input: &SemanticInput) -> SemanticReport {
    // Register the counters up front so instrumented runs always report
    // them, even when everything stays at zero.
    for name in [
        "speclint.semantic_rules",
        "speclint.semantic_checks",
        "speclint.semantic_errors",
        "speclint.semantic_warnings",
        "speclint.semantic_notes",
    ] {
        obskit::counter_add(name, 0);
    }

    let render = |phi: &Ltl| -> String {
        match &input.vocab {
            Some(v) => phi.to_string(v),
            None => format!("{phi:?}"),
        }
    };

    let mut diags = Vec::new();
    let mut checks = 0usize;

    // Worlds with no justice-fair behavior make every universal check
    // vacuously true and every existential check false — report them
    // once and exclude them from per-rule analysis.
    let mut live_worlds: Vec<(&SemanticWorld, Vec<(PropSet, ActSet)>)> = Vec::new();
    for world in &input.worlds {
        checks += 1;
        if exists_fair_path(&world.graph, &Ltl::True, &world.justice) {
            live_worlds.push((world, reachable_labels(&world.graph)));
        } else {
            diags.push(Diagnostic::new(
                LintCode::SemWorldVacuous,
                format!("world {}", world.name),
                "the world has no justice-fair behavior; every rule holds vacuously there \
                 and none can rank controllers",
            ));
        }
    }

    let mut sat = Vec::with_capacity(input.specs.len());
    // realizable[i][w]: some fair path of live world `w` satisfies rule `i`.
    let mut realizable: Vec<Vec<bool>> = Vec::with_capacity(input.specs.len());
    // A rule "discriminates" in a world when it is realizable there but
    // does not hold with the controller unconstrained — i.e. it can
    // actually split controllers. Rules vacuous in *every* world already
    // carry SL301/SL302; reporting that everything subsumes them (or
    // that they subsume nothing) would only restate the vacuity, so
    // SL304 is restricted to pairs of somewhere-discriminating rules.
    let mut discriminating: Vec<bool> = Vec::with_capacity(input.specs.len());
    let mut timings: Vec<RuleTiming> = Vec::with_capacity(input.specs.len());

    // Per-rule checks: SL300 (emptiness), SL301/SL302 (world vacuity).
    for spec in &input.specs {
        let started = Instant::now();
        let subject = format!("spec {}", spec.name);
        let is_sat = satisfiable(&spec.formula);
        checks += 1;
        sat.push(is_sat);
        let mut real = vec![false; live_worlds.len()];
        let mut discriminates_somewhere = false;
        if !is_sat {
            diags.push(Diagnostic::new(
                LintCode::SemUnsatisfiable,
                &subject,
                format!(
                    "`{}` has an empty language (Büchi emptiness on the spec-only automaton); \
                     it fails every controller in every world",
                    render(&spec.formula)
                ),
            ));
        } else {
            for (w, (world, labels)) in live_worlds.iter().enumerate() {
                checks += 1;
                real[w] = exists_fair_path(&world.graph, &spec.formula, &world.justice);
                if !real[w] {
                    diags.push(
                        Diagnostic::new(
                            LintCode::SemWorldVacuous,
                            &subject,
                            format!(
                                "no fair path of `{}` satisfies `{}`; every controller fails \
                                 it there, so it cannot rank controllers in that world",
                                world.name,
                                render(&spec.formula)
                            ),
                        )
                        .element(format!("world {}", world.name)),
                    );
                    continue;
                }
                checks += 1;
                if !holds_fair(&world.graph, &spec.formula, &world.justice) {
                    discriminates_somewhere = true;
                    continue;
                }
                // The rule holds with the controller unconstrained. Is
                // that because its trigger can never fire?
                let unreachable_trigger = trigger_of(&spec.formula).filter(|trigger| {
                    !labels.is_empty()
                        && labels
                            .iter()
                            .all(|&(p, a)| eval_propositional(trigger, p, a) == Some(false))
                });
                match unreachable_trigger {
                    Some(trigger) => diags.push(
                        Diagnostic::new(
                            LintCode::SemUnreachableTrigger,
                            &subject,
                            format!(
                                "trigger `{}` is false on every reachable label of `{}`; \
                                 the rule can never fire there",
                                render(trigger),
                                world.name
                            ),
                        )
                        .element(format!("world {}", world.name)),
                    ),
                    None => diags.push(
                        Diagnostic::new(
                            LintCode::SemWorldVacuous,
                            &subject,
                            format!(
                                "`{}` holds in `{}` with the controller unconstrained; every \
                                 controller passes it there, so it adds no ranking power in \
                                 that world",
                                render(&spec.formula),
                                world.name
                            ),
                        )
                        .element(format!("world {}", world.name)),
                    ),
                }
            }
        }
        realizable.push(real);
        discriminating.push(discriminates_somewhere);
        timings.push(RuleTiming {
            rule: spec.name.clone(),
            solo: started.elapsed(),
            pairwise: Duration::ZERO,
            corpus: Duration::ZERO,
        });
    }

    // Pairwise checks: SL303 (conflict under a world), SL304 (containment
    // under every world). Only pairs of satisfiable rules are
    // interesting; oversized pairs are skipped loudly.
    let mut skipped_pairs = 0usize;
    for i in 0..input.specs.len() {
        for j in (i + 1)..input.specs.len() {
            if !sat[i] || !sat[j] || live_worlds.is_empty() {
                continue;
            }
            let (a, b) = (&input.specs[i], &input.specs[j]);
            if a.formula.size() + b.formula.size() > PAIRWISE_SIZE_BUDGET {
                skipped_pairs += 1;
                continue;
            }
            let started = Instant::now();
            let mut conflict_worlds: Vec<&str> = Vec::new();
            for (w, (world, _)) in live_worlds.iter().enumerate() {
                // A conflict needs both rules individually realizable —
                // an unrealizable rule already carries SL301.
                if !(realizable[i][w] && realizable[j][w]) {
                    continue;
                }
                let both = Ltl::and(a.formula.clone(), b.formula.clone());
                checks += 1;
                if !exists_fair_path(&world.graph, &both, &world.justice) {
                    conflict_worlds.push(&world.name);
                }
            }
            if !conflict_worlds.is_empty() {
                diags.push(
                    Diagnostic::new(
                        LintCode::SemWorldConflict,
                        format!("spec {}", a.name),
                        format!(
                            "`{}` and `{}` have no common fair path in {}; no controller \
                             can pass both there",
                            a.name,
                            b.name,
                            conflict_worlds
                                .iter()
                                .map(|w| format!("`{w}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                    .element(format!("spec {}", b.name)),
                );
            } else if discriminating[i] && discriminating[j] {
                // Containment under every world: ∃ fair path ⊨ A ∧ ¬B
                // anywhere defeats A ⇒ B.
                let mut a_implies_b = true;
                let mut b_implies_a = true;
                for (world, _) in &live_worlds {
                    if a_implies_b {
                        let witness = Ltl::and(a.formula.clone(), Ltl::not(b.formula.clone()));
                        checks += 1;
                        a_implies_b = !exists_fair_path(&world.graph, &witness, &world.justice);
                    }
                    if b_implies_a {
                        let witness = Ltl::and(b.formula.clone(), Ltl::not(a.formula.clone()));
                        checks += 1;
                        b_implies_a = !exists_fair_path(&world.graph, &witness, &world.justice);
                    }
                    if !a_implies_b && !b_implies_a {
                        break;
                    }
                }
                match (a_implies_b, b_implies_a) {
                    (true, true) => diags.push(
                        Diagnostic::new(
                            LintCode::SemWorldSubsumed,
                            format!("spec {}", b.name),
                            format!(
                                "`{}` and `{}` are equivalent under every provided world \
                                 model; one is redundant",
                                a.name, b.name
                            ),
                        )
                        .element(format!("spec {}", a.name)),
                    ),
                    (true, false) => diags.push(
                        Diagnostic::new(
                            LintCode::SemWorldSubsumed,
                            format!("spec {}", b.name),
                            format!(
                                "`{}` implies `{}` under every provided world model; the \
                                 weaker rule adds no discrimination",
                                a.name, b.name
                            ),
                        )
                        .element(format!("spec {}", a.name)),
                    ),
                    (false, true) => diags.push(
                        Diagnostic::new(
                            LintCode::SemWorldSubsumed,
                            format!("spec {}", a.name),
                            format!(
                                "`{}` implies `{}` under every provided world model; the \
                                 weaker rule adds no discrimination",
                                b.name, a.name
                            ),
                        )
                        .element(format!("spec {}", b.name)),
                    ),
                    (false, false) => {}
                }
            }
            let elapsed = started.elapsed();
            timings[i].pairwise += elapsed;
            timings[j].pairwise += elapsed;
        }
    }
    if skipped_pairs > 0 {
        diags.push(Diagnostic::new(
            LintCode::SemWorldSubsumed,
            "rule book",
            format!(
                "{skipped_pairs} spec pair(s) exceeded the pairwise size budget \
                 ({PAIRWISE_SIZE_BUDGET}) and were not checked for semantic \
                 conflict/subsumption"
            ),
        ));
    }

    // Corpus discrimination: SL305.
    if !input.corpus.is_empty() {
        for (i, spec) in input.specs.iter().enumerate() {
            if !sat[i] {
                continue;
            }
            let started = Instant::now();
            let mut satisfied = 0usize;
            for entry in &input.corpus {
                checks += 1;
                if holds_fair(&entry.graph, &spec.formula, &entry.justice) {
                    satisfied += 1;
                }
            }
            let total = input.corpus.len();
            let violated = total - satisfied;
            if satisfied == 0 || violated == 0 {
                diags.push(Diagnostic::new(
                    LintCode::SemZeroDiscrimination,
                    format!("spec {}", spec.name),
                    format!(
                        "satisfied by {satisfied}/{total} and violated by {violated}/{total} \
                         corpus controllers; the rule contributes zero DPO ranking power on \
                         this corpus"
                    ),
                ));
            }
            timings[i].corpus += started.elapsed();
        }
    }

    let tally = crate::diagnostics::Tally::of(&diags);
    obskit::counter_add("speclint.semantic_rules", input.specs.len() as u64);
    obskit::counter_add("speclint.semantic_checks", checks as u64);
    obskit::counter_add("speclint.semantic_errors", tally.errors as u64);
    obskit::counter_add("speclint.semantic_warnings", tally.warnings as u64);
    obskit::counter_add("speclint.semantic_notes", tally.notes as u64);

    SemanticReport {
        diagnostics: diags,
        timings,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use crate::presets::free_controller;
    use autokit::ControllerBuilder;
    use autokit::Guard;
    use ltlcheck::parse;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("a").expect("fresh");
        v.add_prop("b").expect("fresh");
        v.add_act("go").expect("fresh");
        v.add_act("wait").expect("fresh");
        v
    }

    fn spec(name: &str, v: &Vocab, src: &str) -> Spec {
        Spec {
            name: name.to_string(),
            description: String::new(),
            formula: parse(src, v).expect("parses"),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    /// One-state world labeled `{a}` with a self-loop.
    fn always_a_model(v: &Vocab) -> WorldModel {
        let a = v.prop("a").expect("registered");
        let mut model = WorldModel::new("always-a");
        let s = model.add_state(PropSet::singleton(a));
        model.add_transition(s, s);
        model
    }

    /// `always-a ⊗ free{go, wait}`: every action choice stays available.
    fn always_a_world(v: &Vocab) -> SemanticWorld {
        let free = free_controller(
            "free",
            &[
                ActSet::singleton(v.act("go").expect("registered")),
                ActSet::singleton(v.act("wait").expect("registered")),
            ],
        );
        SemanticWorld::from_parts("always-a", &always_a_model(v), &free, Vec::new())
    }

    /// A one-state controller that always emits `act`.
    fn fixed_controller(name: &str, v: &Vocab, act: &str) -> Controller {
        ControllerBuilder::new(name, 1)
            .initial(0)
            .transition(
                0,
                Guard::always(),
                ActSet::singleton(v.act(act).expect("registered")),
                0,
            )
            .build()
            .expect("well-formed")
    }

    fn input(v: &Vocab, specs: Vec<Spec>, worlds: Vec<SemanticWorld>) -> SemanticInput {
        SemanticInput {
            specs,
            worlds,
            corpus: Vec::new(),
            vocab: Some(v.clone()),
        }
    }

    #[test]
    fn sl300_flags_empty_language() {
        let v = vocab();
        let diags = analyze(&input(&v, vec![spec("bad", &v, "F (a & !a)")], Vec::new()));
        assert_eq!(codes(&diags), vec!["SL300"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].location.subject, "spec bad");
    }

    #[test]
    fn sl300_negative_on_satisfiable_spec() {
        let v = vocab();
        let diags = analyze(&input(&v, vec![spec("ok", &v, "G (a -> F b)")], Vec::new()));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sl301_flags_rule_holding_with_controller_unconstrained() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![spec("trivial", &v, "F a")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL301"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].message.contains("unconstrained"), "{diags:?}");
        assert_eq!(
            diags[0].location.element.as_deref(),
            Some("world always-a"),
            "{diags:?}"
        );
    }

    #[test]
    fn sl301_flags_rule_unrealizable_in_world() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![spec("impossible", &v, "F !a")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL301"], "{diags:?}");
        assert!(diags[0].message.contains("no fair path"), "{diags:?}");
    }

    #[test]
    fn sl301_negative_on_discriminating_rule() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![spec("binding", &v, "G !go")],
            vec![always_a_world(&v)],
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sl301_flags_world_without_fair_behavior() {
        let v = vocab();
        let mut world = always_a_world(&v);
        world.justice =
            vec![Justice::new("b clears", parse("b", &v).expect("parses")).expect("propositional")];
        let diags = analyze(&input(&v, vec![spec("any", &v, "G a")], vec![world]));
        assert_eq!(codes(&diags), vec!["SL301"], "{diags:?}");
        assert_eq!(diags[0].location.subject, "world always-a");
    }

    #[test]
    fn sl302_flags_unreachable_trigger() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![spec("dormant", &v, "G (b -> !go)")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL302"], "{diags:?}");
        assert!(diags[0].message.contains("never fire"), "{diags:?}");
    }

    #[test]
    fn sl302_negative_reachable_trigger_reports_plain_vacuity() {
        let v = vocab();
        // Holds everywhere, but the trigger `a` is reachable — SL301,
        // not SL302.
        let diags = analyze(&input(
            &v,
            vec![spec("tautological", &v, "G (a -> a)")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL301"], "{diags:?}");
    }

    #[test]
    fn sl303_flags_conflict_under_world() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![
                spec("liveness", &v, "G F go"),
                spec("safety", &v, "G (a -> !go)"),
            ],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL303"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("always-a"), "{diags:?}");
    }

    #[test]
    fn sl303_negative_on_compatible_rules() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![
                spec("often_go", &v, "G F go"),
                spec("often_wait", &v, "G F wait"),
            ],
            vec![always_a_world(&v)],
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sl304_flags_subsumption_under_world() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![
                spec("strong", &v, "G !go"),
                spec("weak", &v, "G (a -> !go)"),
            ],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL304"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
    }

    #[test]
    fn sl304_negative_on_independent_rules() {
        let v = vocab();
        let diags = analyze(&input(
            &v,
            vec![
                spec("often_go", &v, "G F go"),
                spec("often_wait", &v, "G F wait"),
            ],
            vec![always_a_world(&v)],
        ));
        assert!(!codes(&diags).contains(&"SL304"), "{diags:?}");
    }

    #[test]
    fn sl304_skips_oversized_pairs_with_a_note() {
        let v = vocab();
        let mut big = parse("F go", &v).expect("parses");
        for _ in 0..40 {
            big = Ltl::and(big, parse("F go", &v).expect("parses"));
        }
        assert!(big.size() > PAIRWISE_SIZE_BUDGET);
        let mk = |name: &str| Spec {
            name: name.to_string(),
            description: String::new(),
            formula: big.clone(),
        };
        let diags = analyze(&input(
            &v,
            vec![mk("big_a"), mk("big_b")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(codes(&diags), vec!["SL304"], "{diags:?}");
        assert!(
            diags[0].message.contains("pairwise size budget"),
            "{diags:?}"
        );
    }

    #[test]
    fn sl305_flags_zero_discrimination_corpus() {
        let v = vocab();
        let model = always_a_model(&v);
        let corpus = vec![CorpusController::from_parts(
            "waiter",
            "always-a",
            &model,
            &fixed_controller("waiter", &v, "wait"),
            Vec::new(),
        )];
        let diags = analyze(&SemanticInput {
            specs: vec![spec("lenient", &v, "G (a -> !go)")],
            worlds: Vec::new(),
            corpus,
            vocab: Some(v.clone()),
        });
        assert_eq!(codes(&diags), vec!["SL305"], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].message.contains("1/1"), "{diags:?}");
    }

    #[test]
    fn sl305_negative_on_discriminating_corpus() {
        let v = vocab();
        let model = always_a_model(&v);
        let corpus = vec![
            CorpusController::from_parts(
                "waiter",
                "always-a",
                &model,
                &fixed_controller("waiter", &v, "wait"),
                Vec::new(),
            ),
            CorpusController::from_parts(
                "goer",
                "always-a",
                &model,
                &fixed_controller("goer", &v, "go"),
                Vec::new(),
            ),
        ];
        let diags = analyze(&SemanticInput {
            specs: vec![spec("binding", &v, "G (a -> !go)")],
            worlds: Vec::new(),
            corpus,
            vocab: Some(v.clone()),
        });
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unsatisfiable_rules_are_excluded_from_pairwise_and_corpus() {
        let v = vocab();
        let model = always_a_model(&v);
        let corpus = vec![CorpusController::from_parts(
            "waiter",
            "always-a",
            &model,
            &fixed_controller("waiter", &v, "wait"),
            Vec::new(),
        )];
        let diags = analyze(&SemanticInput {
            specs: vec![spec("bad", &v, "F (a & !a)"), spec("ok", &v, "G F wait")],
            worlds: vec![always_a_world(&v)],
            corpus,
            vocab: Some(v.clone()),
        });
        // Only the emptiness finding and `ok`'s zero-discrimination
        // count; no conflict/subsumption against the empty language.
        assert_eq!(codes(&diags), vec!["SL300", "SL305"], "{diags:?}");
    }

    #[test]
    fn analyze_timed_reports_per_rule_cost_and_check_count() {
        let v = vocab();
        let report = analyze_timed(&input(
            &v,
            vec![spec("one", &v, "G F go"), spec("two", &v, "G F wait")],
            vec![always_a_world(&v)],
        ));
        assert_eq!(report.timings.len(), 2);
        assert_eq!(report.timings[0].rule, "one");
        assert!(report.checks > 0);
        let _ = report.timings[0].total();
    }
}
