//! Parsed-step lints (`SL2xx`): unparseable steps, lexicon-coverage gaps,
//! and ambiguous (multi-action) steps over `glm2fsa` input.
//!
//! These run on the *text* of a step list, using the same lexicon the
//! synthesizer uses, so they can explain an upcoming synthesis failure
//! token by token instead of only reporting "failed to align".

use crate::diagnostics::{Diagnostic, LintCode};
use autokit::Vocab;
use glm2fsa::{parse_step, Lexicon};
use std::collections::BTreeSet;

/// Words the step grammar itself consumes: conditional markers, clause
/// separators, negations, and observation verbs (mirrors the constant
/// lists in `glm2fsa::parse`).
const STRUCTURAL_WORDS: &[&str] = &[
    "if", "when", "then", "and", "or", ",", // grammar
    "no", "not", "without", "clear", "free", "absent", "isnt", // negation
    "observe", "check", "look", "watch", "verify", "monitor", "scan", "confirm",
    "approach", // observation verbs
];

/// Filler words that carry no propositional content. The parser skips
/// unmatched words silently; this list keeps SL202 from flagging ordinary
/// connective prose so it only reports genuinely foreign tokens.
const STOPWORDS: &[&str] = &[
    "the",
    "a",
    "an",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "it",
    "its",
    "there",
    "here",
    "this",
    "that",
    "these",
    "those",
    "you",
    "your",
    "of",
    "in",
    "on",
    "at",
    "to",
    "for",
    "from",
    "with",
    "by",
    "as",
    "into",
    "onto",
    "over",
    "under",
    "out",
    "up",
    "down",
    "off",
    "do",
    "does",
    "did",
    "make",
    "take",
    "go",
    "get",
    "state",
    "execute",
    "action",
    "present",
    "proceed",
    "front",
    "ahead",
    "side",
    "intersection",
    "before",
    "after",
    "until",
    "while",
    "once",
    "again",
    "first",
    "next",
    "finally",
    "begin",
    "start",
    "continue",
    "now",
];

/// Crude stemmer: strips common inflection suffixes so `turning`/`turns`
/// match the vocabulary word `turn`.
fn stem(word: &str) -> &str {
    for suffix in ["ing", "ed", "es", "s"] {
        if let Some(base) = word.strip_suffix(suffix) {
            if base.len() >= 3 {
                return base;
            }
        }
    }
    word
}

/// Lowercases and replaces hyphens so canonical names (`green left-turn
/// light`) token-match the lexicon's normalized output.
fn norm_words(text: &str) -> Vec<String> {
    text.to_lowercase()
        .replace('-', " ")
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

/// Lints one step list.
///
/// * `name` — display name for the list (e.g. the task prompt).
/// * `steps` — the raw step texts, one entry per step.
/// * `lexicon` — the alignment lexicon the synthesizer will use.
/// * `vocab` — the canonical vocabulary behind the lexicon.
pub fn lint_steps<S: AsRef<str>>(
    name: &str,
    steps: &[S],
    lexicon: &Lexicon,
    vocab: &Vocab,
) -> Vec<Diagnostic> {
    let subject = format!("steps {name}");

    // Canonical names as normalized word sequences, longest first so the
    // coverage scan is greedy the same way the lexicon is. Action names
    // are tagged so the ambiguity lint can count distinct action mentions.
    let mut phrases: Vec<(Vec<String>, Option<String>)> = Vec::new();
    for p in vocab.props() {
        phrases.push((norm_words(vocab.prop_name(p)), None));
    }
    for a in vocab.acts() {
        let canonical = vocab.act_name(a).to_owned();
        phrases.push((norm_words(&canonical), Some(canonical)));
    }
    phrases.sort_by_key(|(words, _)| std::cmp::Reverse(words.len()));

    // Single vocabulary words (stemmed) — a token like `green` or `left`
    // on its own is domain language even when it is not part of a full
    // canonical phrase at that position.
    let vocab_word_stems: BTreeSet<String> = phrases
        .iter()
        .flat_map(|(words, _)| words.iter())
        .map(|w| stem(w).to_owned())
        .collect();

    let mut diags = Vec::new();
    for (idx, step) in steps.iter().enumerate() {
        let step = step.as_ref();
        let element = format!("step {}", idx + 1);

        // SL201 — the step does not parse at all.
        if let Err(reason) = parse_step(step, lexicon) {
            diags.push(
                Diagnostic::new(
                    LintCode::UnparseableStep,
                    &subject,
                    format!("`{}` does not parse: {reason}", step.trim()),
                )
                .element(&element),
            );
        }

        // Coverage scan over the aligned text.
        let aligned = lexicon.align(step);
        let words = norm_words(&aligned);
        let mut unknown: Vec<&str> = Vec::new();
        let mut act_mentions: BTreeSet<&str> = BTreeSet::new();
        let mut i = 0;
        while i < words.len() {
            let matched = phrases.iter().find(|(phrase, _)| {
                i + phrase.len() <= words.len() && words[i..i + phrase.len()] == phrase[..]
            });
            if let Some((phrase, act)) = matched {
                if let Some(act) = act {
                    act_mentions.insert(act.as_str());
                }
                i += phrase.len();
                continue;
            }
            let word = words[i].as_str();
            let stemmed = stem(word);
            let known = word.chars().all(|c| c.is_ascii_digit())
                || STRUCTURAL_WORDS.contains(&word)
                || STRUCTURAL_WORDS.contains(&stemmed)
                || STOPWORDS.contains(&word)
                || STOPWORDS.contains(&stemmed)
                || vocab_word_stems.contains(stemmed);
            if !known {
                unknown.push(word);
            }
            i += 1;
        }

        // SL202 — tokens the lexicon cannot place.
        if !unknown.is_empty() {
            diags.push(
                Diagnostic::new(
                    LintCode::UnknownToken,
                    &subject,
                    format!(
                        "token(s) [{}] are outside the lexicon and will be ignored",
                        unknown.join(", ")
                    ),
                )
                .element(&element),
            );
        }

        // SL203 — several distinct actions in one step; the parser keeps
        // only the first.
        if act_mentions.len() >= 2 {
            let mentioned: Vec<&str> = act_mentions.into_iter().collect();
            diags.push(
                Diagnostic::new(
                    LintCode::AmbiguousStep,
                    &subject,
                    format!(
                        "mentions {} actions [{}]; only the first takes effect",
                        mentioned.len(),
                        mentioned.join(", ")
                    ),
                )
                .element(&element),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use autokit::presets::DrivingDomain;

    fn setup() -> (DrivingDomain, Lexicon) {
        let d = DrivingDomain::new();
        let l = Lexicon::driving(&d);
        (d, l)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn sl201_flags_unparseable_step() {
        let (d, l) = setup();
        let diags = lint_steps("demo", &["Do a barrel roll."], &l, &d.vocab);
        assert!(codes(&diags).contains(&"SL201"), "{diags:?}");
    }

    #[test]
    fn sl201_negative_on_parseable_step() {
        let (d, l) = setup();
        let diags = lint_steps("demo", &["Turn right."], &l, &d.vocab);
        assert!(!codes(&diags).contains(&"SL201"), "{diags:?}");
    }

    #[test]
    fn sl202_flags_out_of_lexicon_tokens() {
        let (d, l) = setup();
        let diags = lint_steps(
            "demo",
            &["If no car from the left, teleport across the intersection."],
            &l,
            &d.vocab,
        );
        let unknown: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::UnknownToken)
            .collect();
        assert_eq!(unknown.len(), 1, "{diags:?}");
        assert!(unknown[0].message.contains("teleport"), "{diags:?}");
        assert!(!unknown[0].message.contains("intersection"), "{diags:?}");
    }

    #[test]
    fn sl202_negative_on_papers_shipped_step_lists() {
        let (d, l) = setup();
        // The paper's own aligned responses must be fully covered.
        let before = [
            "Observe the state of the green traffic light.",
            "If the green traffic light is on, execute the action go straight.",
            "As you approach the intersection, observe the state of the car from left.",
            "If the car from left is not present, check the state of the pedestrian at right.",
            "If the pedestrian at right is not present, execute the action turn right.",
        ];
        let diags = lint_steps("right turn (before)", &before, &l, &d.vocab);
        assert!(!codes(&diags).contains(&"SL202"), "{diags:?}");
        assert!(!codes(&diags).contains(&"SL201"), "{diags:?}");
    }

    #[test]
    fn sl203_flags_multi_action_step() {
        let (d, l) = setup();
        let diags = lint_steps("demo", &["Turn right and then stop."], &l, &d.vocab);
        let ambiguous: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::AmbiguousStep)
            .collect();
        assert_eq!(ambiguous.len(), 1, "{diags:?}");
        assert!(ambiguous[0].message.contains("stop"), "{diags:?}");
        assert!(ambiguous[0].message.contains("turn right"), "{diags:?}");
    }

    #[test]
    fn sl203_negative_on_single_action_step() {
        let (d, l) = setup();
        let diags = lint_steps(
            "demo",
            &["If the green traffic light is on, go straight."],
            &l,
            &d.vocab,
        );
        assert!(!codes(&diags).contains(&"SL203"), "{diags:?}");
    }

    #[test]
    fn numbered_steps_do_not_flag_their_numbering() {
        let (d, l) = setup();
        let diags = lint_steps("demo", &["3. Turn right."], &l, &d.vocab);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
