//! End-to-end observability: an enabled smoke run of the pipeline emits
//! the documented stage spans and counters (DESIGN.md §7).
//!
//! One test function only — the obskit recorder is process-global, and
//! this integration binary must not toggle it from parallel tests.

use dpo_af::pipeline::{DpoAf, PipelineConfig};

#[test]
fn smoke_run_emits_stage_spans_and_counters() {
    obskit::enable();
    obskit::set_console(false);
    let pipeline = DpoAf::new(PipelineConfig::smoke());
    let artifacts = pipeline.run();
    let snap = obskit::snapshot();
    obskit::disable();

    // Every pipeline stage shows up in the aggregated span forest, with
    // the per-response stages nested under the run root.
    let run = snap
        .spans
        .iter()
        .find(|n| n.name == "pipeline.run")
        .expect("pipeline.run span recorded");
    for stage in [
        "pipeline.pretrain",
        "pipeline.collect",
        "pipeline.sample",
        "pipeline.parse",
        "pipeline.verify",
        "pipeline.rank",
        "pipeline.train",
        "pipeline.eval",
    ] {
        let node = run
            .find(stage)
            .unwrap_or_else(|| panic!("stage span `{stage}` missing under pipeline.run"));
        assert!(node.count > 0, "{stage} count");
    }
    // Stage durations nest: children never exceed their parent.
    let collect = run.find("pipeline.collect").expect("collect");
    let sample = collect.find("pipeline.sample").expect("sample");
    assert!(sample.total_us <= collect.total_us);

    // Counters line up with the artifacts.
    let counter = |name: &str| {
        snap.metrics
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(
        counter("pipeline.pairs_formed"),
        artifacts.dataset_size as u64
    );
    assert!(counter("pipeline.responses_scored") > 0);
    assert!(counter("ltlcheck.checks") > 0);
    assert!(counter("ltlcheck.product_states") > 0);
    assert!(counter("ltlcheck.search_visits") >= counter("ltlcheck.product_states"));
    assert!(counter("pretrain.tokens") > 0);
    assert!(counter("dpo.pairs_trained") > 0);

    // Per-epoch training events were recorded.
    assert!(
        snap.events.iter().any(|e| e.name == "dpo.epoch"),
        "dpo.epoch events missing"
    );
    assert!(
        snap.events.iter().any(|e| e.name == "pipeline.iteration"),
        "pipeline.iteration event missing"
    );
}
