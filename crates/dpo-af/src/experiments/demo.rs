//! The Section 5.1 demonstrations: controller construction and
//! verification for the right-turn task before and after fine-tuning,
//! plus the Appendix C left-turn example and the Appendix D NuSMV
//! exports.
//!
//! The step lists are the paper's own (its aligned responses), so this
//! module checks that the reproduction's GLM2FSA + model checker recover
//! the paper's findings: the pre-fine-tuning right-turn controller fails
//! Φ₅ with the "light turns red and a car arrives while waiting on
//! pedestrians" edge case, and the post-fine-tuning controller passes;
//! the pre-fine-tuning left-turn controller fails Φ₁₂.

use crate::domain::DomainBundle;
use crate::feedback::{justice_for, scenario_model};
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action};
use ltlcheck::specs::driving_specs;
use ltlcheck::{smv, verify_all_fair, Verdict, VerificationReport};
use serde::{Deserialize, Serialize};

/// The paper's pre-fine-tuning right-turn response (§5.1, aligned form).
pub const RIGHT_TURN_BEFORE: [&str; 5] = [
    "Observe the state of the green traffic light.",
    "If the green traffic light is on, execute the action go straight.",
    "As you approach the intersection, observe the state of the car from left.",
    "If the car from left is not present, check the state of the pedestrian at right.",
    "If the pedestrian at right is not present, execute the action turn right.",
];

/// The paper's post-fine-tuning right-turn response (§5.1).
pub const RIGHT_TURN_AFTER: [&str; 3] = [
    "Observe the traffic light in front of you.",
    "Check for the left approaching car and right side pedestrian.",
    "If no car from the left is approaching and no pedestrian on the right, proceed to turn right.",
];

/// The paper's pre-fine-tuning left-turn response (Appendix C).
pub const LEFT_TURN_BEFORE: [&str; 4] = [
    "Approach the traffic light with a left-turn light.",
    "Wait for the left-turn light to turn green.",
    "When the left-turn light turns green, wait for oncoming traffic to clear before turning left.",
    "Turn left and proceed through the intersection.",
];

/// The paper's post-fine-tuning left-turn response (Appendix C).
pub const LEFT_TURN_AFTER: [&str; 3] = [
    "Approach the traffic light and observe the left turn light.",
    "If the left turn light is not green, then stop.",
    "If the left turn light is green, then turn left.",
];

/// One before/after verification comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemoComparison {
    /// Task label.
    pub task: String,
    /// Verification report of the pre-fine-tuning controller.
    pub before: VerificationReport,
    /// Verification report of the post-fine-tuning controller.
    pub after: VerificationReport,
    /// Rendered counterexample for the paper's highlighted violated
    /// specification (Φ₅ for the right turn, Φ₁₂ for the left turn).
    pub counterexample: String,
    /// NuSMV module export of both controllers (Appendix D analogue).
    pub smv_module: String,
}

// ALLOW: the paper's demonstration step lists align by construction (the
// speclint presets tests assert the same invariant).
#[allow(clippy::expect_used)]
fn verify_steps(
    bundle: &DomainBundle,
    name: &str,
    steps: &[&str],
    scenario: ScenarioKind,
) -> (autokit::Controller, VerificationReport) {
    let ctrl = synthesize(
        name,
        steps,
        &bundle.lexicon,
        crate::feedback::fsa_options(&bundle.driving),
    )
    .expect("paper demo steps align");
    let ctrl = with_default_action(&ctrl, bundle.driving.stop);
    let model = scenario_model(&bundle.driving, scenario);
    let justice = justice_for(&bundle.driving, scenario);
    let specs = driving_specs(&bundle.driving);
    let report = verify_all_fair(
        &model,
        &ctrl,
        specs.iter().map(|s| (s.name.as_str(), &s.formula)),
        &justice,
    );
    (ctrl, report)
}

fn render_cex(bundle: &DomainBundle, report: &VerificationReport, spec: &str) -> String {
    report
        .results
        .iter()
        .find(|r| r.name == spec)
        .and_then(|r| match &r.verdict {
            Verdict::Fails(cex) => Some(cex.display(&bundle.driving.vocab).to_string()),
            Verdict::Holds => None,
        })
        .unwrap_or_else(|| format!("({spec} holds)"))
}

/// Runs the right-turn demonstration (§5.1).
pub fn right_turn(bundle: &DomainBundle) -> DemoComparison {
    let (before_ctrl, before) = verify_steps(
        bundle,
        "turn right at traffic light (before)",
        &RIGHT_TURN_BEFORE,
        ScenarioKind::TrafficLight,
    );
    let (after_ctrl, after) = verify_steps(
        bundle,
        "turn right at traffic light (after)",
        &RIGHT_TURN_AFTER,
        ScenarioKind::TrafficLight,
    );
    let counterexample = render_cex(bundle, &before, "phi_5");
    let specs = driving_specs(&bundle.driving);
    let spec_list: Vec<(String, ltlcheck::Ltl)> = specs
        .iter()
        .map(|s| (s.name.clone(), s.formula.clone()))
        .collect();
    let smv_module = format!(
        "{}\n{}",
        smv::render_module(
            "turn_right_before_finetune",
            &before_ctrl,
            &bundle.driving.vocab,
            &spec_list
        ),
        smv::render_module(
            "turn_right_after_finetune",
            &after_ctrl,
            &bundle.driving.vocab,
            &[]
        )
    );
    DemoComparison {
        task: "turn right at the traffic light".to_owned(),
        before,
        after,
        counterexample,
        smv_module,
    }
}

/// Runs the left-turn demonstration (Appendix C).
pub fn left_turn(bundle: &DomainBundle) -> DemoComparison {
    let (before_ctrl, before) = verify_steps(
        bundle,
        "turn left at traffic light (before)",
        &LEFT_TURN_BEFORE,
        ScenarioKind::LeftTurnSignal,
    );
    let (after_ctrl, after) = verify_steps(
        bundle,
        "turn left at traffic light (after)",
        &LEFT_TURN_AFTER,
        ScenarioKind::LeftTurnSignal,
    );
    let counterexample = render_cex(bundle, &before, "phi_12");
    let smv_module = format!(
        "{}\n{}",
        smv::render_module(
            "turn_left_before_finetune",
            &before_ctrl,
            &bundle.driving.vocab,
            &[]
        ),
        smv::render_module(
            "turn_left_after_finetune",
            &after_ctrl,
            &bundle.driving.vocab,
            &[]
        )
    );
    DemoComparison {
        task: "turn left at the traffic light".to_owned(),
        before,
        after,
        counterexample,
        smv_module,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_turn_before_fails_phi5_after_passes() {
        let bundle = DomainBundle::new();
        let demo = right_turn(&bundle);
        let verdict_of = |r: &VerificationReport, name: &str| {
            r.results
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.verdict.holds())
                .expect("spec present")
        };
        assert!(
            !verdict_of(&demo.before, "phi_5"),
            "paper: before-FT right turn violates phi_5"
        );
        assert!(
            verdict_of(&demo.after, "phi_5"),
            "paper: after-FT right turn satisfies phi_5"
        );
        assert!(
            demo.after.num_satisfied() > demo.before.num_satisfied(),
            "after {} vs before {} (before failed {:?}, after failed {:?})",
            demo.after.num_satisfied(),
            demo.before.num_satisfied(),
            demo.before.failed(),
            demo.after.failed()
        );
        // The counterexample prose was rendered.
        assert!(demo.counterexample.contains("loop starts here"));
        // The counterexample shows a right turn while a car approaches
        // from the left or a pedestrian is on the right.
        assert!(demo.counterexample.contains("turn right"));
    }

    #[test]
    fn left_turn_before_fails_phi12_after_passes() {
        let bundle = DomainBundle::new();
        let demo = left_turn(&bundle);
        let verdict_of = |r: &VerificationReport, name: &str| {
            r.results
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.verdict.holds())
                .expect("spec present")
        };
        assert!(
            !verdict_of(&demo.before, "phi_12"),
            "paper: before-FT left turn violates phi_12; failed: {:?}",
            demo.before.failed()
        );
        assert!(
            verdict_of(&demo.after, "phi_12"),
            "paper: after-FT left turn satisfies phi_12; failed: {:?}",
            demo.after.failed()
        );
        assert!(demo.after.num_satisfied() >= demo.before.num_satisfied());
    }

    #[test]
    fn smv_exports_are_complete_modules() {
        let bundle = DomainBundle::new();
        let demo = right_turn(&bundle);
        assert!(demo
            .smv_module
            .contains("MODULE turn_right_before_finetune"));
        assert!(demo.smv_module.contains("MODULE turn_right_after_finetune"));
        assert!(demo.smv_module.contains("LTLSPEC NAME phi_5"));
    }
}
