//! Reproductions of the paper's evaluation artifacts.
//!
//! | Module   | Paper artifact | What it regenerates |
//! |----------|----------------|---------------------|
//! | [`demo`] | §5.1, Fig. 7/18, Appendix C/D | before/after controllers for the right-turn and left-turn tasks, their verification reports, the Φ₅/Φ₁₂ counterexamples, and NuSMV exports |
//! | [`fig8`] | Figure 8 | DPO loss / accuracy / marginal preference vs epoch, mean±min/max over seeds |
//! | [`fig9`] | Figure 9 | number of satisfied specifications vs DPO epoch, training and validation tasks |
//! | [`fig11`] | Figure 11 | per-specification satisfaction rates `P_Φ` in the simulator, before vs after fine-tuning |
//! | [`fig12`] | Figure 12 | detector confidence→accuracy curves, sim vs real, per object class |
//! | [`fig13`] | Figure 13 | per-condition (weather/light) detection accuracy, sim vs real |
//! | [`headline`] | §1 / §5 claim | overall % of specifications satisfied, 60% → 90%+ |
//!
//! Every experiment returns a serializable result struct; the `bench`
//! crate's binaries print them as the tables/series the paper reports.

pub mod demo;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod headline;
