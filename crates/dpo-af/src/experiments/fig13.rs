//! Figure 13: detector performance under different weather and light
//! conditions, simulator vs real world.
//!
//! The paper's Figure 13 is a qualitative grid of detections on Carla
//! and NuImages frames under varying conditions; this reproduction
//! quantifies the same comparison — per-condition detection accuracy and
//! mean confidence in both domains. The paper's claim survives if the
//! per-condition accuracies track each other across domains (conditions
//! are harder or easier *for both*, rather than one domain degrading).

use serde::{Deserialize, Serialize};
use vision::{generate_frame, Condition, Detector, Domain};

/// Detection statistics for one (condition, domain) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Fraction of detections that were correct.
    pub accuracy: f32,
    /// Mean confidence score.
    pub mean_confidence: f32,
    /// Number of detections.
    pub count: usize,
}

/// One row of the Figure 13 table: a condition with its sim and real
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Weather/light condition.
    pub condition: Condition,
    /// Statistics on simulator frames.
    pub sim: CellStats,
    /// Statistics on real frames.
    pub real: CellStats,
}

/// The Figure 13 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// One row per condition.
    pub rows: Vec<Fig13Row>,
}

/// Runs the per-condition comparison with `frames` frames per cell.
pub fn run(frames: usize, seed: u64) -> Fig13Result {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let detector = Detector::grounded_sam_like();

    let mut rows = Vec::new();
    for condition in Condition::all() {
        let cell = |domain: Domain, rng: &mut StdRng| -> CellStats {
            let mut correct = 0usize;
            let mut conf_sum = 0.0f32;
            let mut count = 0usize;
            for _ in 0..frames {
                let frame = generate_frame(domain, condition, rng);
                for obj in &frame.objects {
                    let det = detector.detect(obj, domain, rng);
                    if det.correct {
                        correct += 1;
                    }
                    conf_sum += det.confidence;
                    count += 1;
                }
            }
            CellStats {
                accuracy: correct as f32 / count.max(1) as f32,
                mean_confidence: conf_sum / count.max(1) as f32,
                count,
            }
        };
        rows.push(Fig13Row {
            condition,
            sim: cell(Domain::Sim, &mut rng),
            real: cell(Domain::Real, &mut rng),
        });
    }
    Fig13Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harder_conditions_reduce_accuracy_in_both_domains() {
        let result = run(400, 3);
        let get = |c: Condition| {
            result
                .rows
                .iter()
                .find(|r| r.condition == c)
                .copied()
                .expect("all conditions present")
        };
        let day = get(Condition::ClearDay);
        let night = get(Condition::Night);
        assert!(day.sim.accuracy > night.sim.accuracy);
        assert!(day.real.accuracy > night.real.accuracy);
        // Consistency: per-condition accuracies track across domains
        // (the sim frames are slightly easier — less occlusion — so allow
        // a modest margin).
        for row in &result.rows {
            assert!(
                (row.sim.accuracy - row.real.accuracy).abs() < 0.15,
                "{:?}: sim {} vs real {}",
                row.condition,
                row.sim.accuracy,
                row.real.accuracy
            );
        }
    }

    #[test]
    fn confidence_tracks_accuracy() {
        let result = run(400, 4);
        for row in &result.rows {
            for cell in [row.sim, row.real] {
                assert!(
                    (cell.mean_confidence - cell.accuracy).abs() < 0.1,
                    "{:?}: confidence {} vs accuracy {}",
                    row.condition,
                    cell.mean_confidence,
                    cell.accuracy
                );
            }
        }
    }
}
