//! Figure 11: empirical satisfaction rates `P_Φ` of the first five
//! specifications during actual operation in the simulator, comparing
//! controllers synthesized before and after fine-tuning.
//!
//! Multiple responses are sampled per task from each model, compiled to
//! controllers (responses that fail to align contribute *failing* traces
//! — a vehicle with no controller satisfies nothing vacuously, so they
//! are simply skipped, matching the paper's "we operate the controllers"
//! framing), each controller runs several episodes, and the traces are
//! pooled per specification.

use crate::domain::DomainBundle;
use crate::feedback::score_tokens;
use autokit::Trace;
use drivesim::{ground_many, Scenario, ScenarioConfig};
use ltlcheck::specs::headline_specs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tinylm::{CondLm, SampleOptions};

/// Satisfaction rates for one specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Specification name (`phi_1` … `phi_5`).
    pub spec: String,
    /// `P_Φ` before fine-tuning.
    pub before: f64,
    /// `P_Φ` after fine-tuning.
    pub after: f64,
}

/// The Figure 11 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// One row per headline specification.
    pub rows: Vec<Fig11Row>,
    /// Traces pooled per model.
    pub traces_per_model: usize,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig11Config {
    /// Responses sampled per task per model.
    pub samples_per_task: usize,
    /// Episodes per controller.
    pub episodes: usize,
    /// Ticks per episode.
    pub steps: usize,
    /// Sampling temperature.
    pub temperature: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            samples_per_task: 3,
            episodes: 8,
            steps: 40,
            temperature: 0.8,
            seed: 23,
        }
    }
}

fn collect_traces(
    bundle: &DomainBundle,
    lm: &CondLm,
    cfg: Fig11Config,
    rng: &mut StdRng,
) -> Vec<Trace> {
    let opts = SampleOptions {
        temperature: cfg.temperature,
        max_len: 60,
        ..SampleOptions::default()
    };
    let mut traces = Vec::new();
    for task in &bundle.tasks {
        for _ in 0..cfg.samples_per_task {
            #[allow(clippy::expect_used)] // ALLOW: task ids come from the bundle
            let tokens = lm.sample(task.id, rng, opts).expect("task id in range");
            let scored = score_tokens(bundle, task, &tokens);
            let Some(ctrl) = scored.controller else {
                continue; // unalignable response: no controller to run
            };
            let mut scenario = Scenario::new(task.scenario, ScenarioConfig::default());
            traces.extend(ground_many(
                &ctrl,
                &mut scenario,
                &bundle.driving,
                rng,
                cfg.steps,
                cfg.episodes,
            ));
        }
    }
    traces
}

/// Runs the Figure 11 experiment for a (reference, policy) model pair.
pub fn run(
    bundle: &DomainBundle,
    reference: &CondLm,
    policy: &CondLm,
    cfg: Fig11Config,
) -> Fig11Result {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let before_traces = collect_traces(bundle, reference, cfg, &mut rng);
    let mut rng = StdRng::seed_from_u64(cfg.seed); // same episodes for fairness
    let after_traces = collect_traces(bundle, policy, cfg, &mut rng);

    let rows = headline_specs(&bundle.driving)
        .iter()
        .map(|s| Fig11Row {
            spec: s.name.clone(),
            before: ltlcheck::finite::satisfaction_rate(before_traces.iter(), &s.formula),
            after: ltlcheck::finite::satisfaction_rate(after_traces.iter(), &s.formula),
        })
        .collect();

    Fig11Result {
        rows,
        traces_per_model: before_traces.len().min(after_traces.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DpoAf, PipelineConfig};

    #[test]
    fn produces_five_bounded_rows() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let mut rng = StdRng::seed_from_u64(1);
        let lm = pipeline.pretrained_lm(&mut rng);
        let cfg = Fig11Config {
            samples_per_task: 1,
            episodes: 2,
            steps: 15,
            ..Fig11Config::default()
        };
        let result = run(&pipeline.bundle, &lm, &lm, cfg);
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert!((0.0..=1.0).contains(&row.before), "{row:?}");
            assert!((0.0..=1.0).contains(&row.after), "{row:?}");
        }
    }
}
