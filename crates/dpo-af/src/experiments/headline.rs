//! The headline claim (abstract / §1): DPO-AF raises the percentage of
//! specifications satisfied by synthesized controllers from roughly 60%
//! to above 90%.

use crate::pipeline::RunArtifacts;
use serde::{Deserialize, Serialize};

/// The headline numbers extracted from a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineResult {
    /// Percentage of specifications satisfied before fine-tuning
    /// (training and validation tasks pooled).
    pub before_pct: f64,
    /// Percentage after fine-tuning.
    pub after_pct: f64,
    /// Number of preference pairs the run trained on.
    pub dataset_size: usize,
}

/// Extracts the headline numbers from a run's checkpoint series: the
/// epoch-0 point is "before", the final checkpoint is "after". Scores are
/// averaged over training and validation tasks (they are reported per
/// split in Figure 9; the abstract pools them).
// ALLOW: `run()` always records the epoch-0 checkpoint before returning.
#[allow(clippy::expect_used)]
pub fn from_artifacts(artifacts: &RunArtifacts) -> HeadlineResult {
    let first = artifacts
        .checkpoint_evals
        .first()
        .expect("runs record the epoch-0 point");
    let last = artifacts
        .checkpoint_evals
        .last()
        .expect("runs record at least one point");
    let pct =
        |e: &crate::pipeline::CheckpointEval| (e.train_score + e.val_score) / 2.0 / 15.0 * 100.0;
    HeadlineResult {
        before_pct: pct(first),
        after_pct: pct(last),
        dataset_size: artifacts.dataset_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{DpoAf, PipelineConfig};

    #[test]
    fn percentages_are_bounded() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let artifacts = pipeline.run();
        let headline = from_artifacts(&artifacts);
        assert!((0.0..=100.0).contains(&headline.before_pct));
        assert!((0.0..=100.0).contains(&headline.after_pct));
        assert!(headline.dataset_size > 0);
    }
}
