//! Figure 9: number of specifications satisfied (of 15) by controllers
//! synthesized from checkpoint models, as a function of the DPO training
//! epoch, split into training and validation tasks.

use crate::pipeline::{CheckpointEval, DpoAf, RunArtifacts};
use serde::{Deserialize, Serialize};

/// The Figure 9 result: the checkpoint evaluation series plus the run's
/// artifacts for reuse by downstream experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// `(epoch, training-task score, validation-task score)` series.
    pub series: Vec<CheckpointEval>,
    /// The artifacts of the underlying run.
    pub artifacts: RunArtifacts,
}

/// Runs the pipeline end-to-end and extracts the Figure 9 series.
pub fn run(pipeline: &DpoAf) -> Fig9Result {
    let artifacts = pipeline.run();
    Fig9Result {
        series: artifacts.checkpoint_evals.clone(),
        artifacts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn series_starts_at_epoch_zero_and_is_bounded() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let result = run(&pipeline);
        assert_eq!(result.series[0].epoch, 0);
        for point in &result.series {
            assert!((0.0..=15.0).contains(&point.train_score));
            assert!((0.0..=15.0).contains(&point.val_score));
        }
    }
}
