//! Figure 8: DPO fine-tuning statistics — loss, accuracy and marginal
//! preference per epoch, aggregated over random seeds.
//!
//! As in the paper, every seed starts from the *same* pre-trained
//! parameters and the same preference dataset; only the data order (and
//! per-epoch subsampling) differs between seeds, which is why the
//! between-seed variance is small.

use crate::pipeline::DpoAf;
use dpo::{DpoTrainer, EpochStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One aggregated epoch point: mean, min and max over seeds for each of
/// the three panels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Epoch index.
    pub epoch: usize,
    /// Mean / min / max DPO loss.
    pub loss: (f32, f32, f32),
    /// Mean / min / max accuracy.
    pub accuracy: (f32, f32, f32),
    /// Mean / min / max marginal preference.
    pub margin: (f32, f32, f32),
}

/// The full Figure 8 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Raw per-seed series.
    pub per_seed: Vec<Vec<EpochStats>>,
    /// Aggregated series (one point per epoch).
    pub aggregated: Vec<Fig8Point>,
    /// Number of preference pairs in the shared dataset.
    pub dataset_size: usize,
}

/// Runs the Figure 8 experiment: one shared pre-trained reference and
/// dataset, `seeds.len()` independent DPO runs.
pub fn run(pipeline: &DpoAf, seeds: &[u64]) -> Fig8Result {
    let mut rng = StdRng::seed_from_u64(pipeline.config.seed);
    let reference = pipeline.pretrained_lm(&mut rng);
    let dataset = pipeline.collect_dataset(&reference, &mut rng);
    assert!(!dataset.is_empty(), "no preference pairs collected");

    let trainer = DpoTrainer::new(pipeline.config.train);
    let per_seed: Vec<Vec<EpochStats>> = seeds
        .iter()
        .map(|&seed| {
            let mut policy = reference.clone();
            let mut seed_rng = StdRng::seed_from_u64(seed);
            #[allow(clippy::expect_used)] // ALLOW: dataset tokens come from this model
            trainer
                .train(&mut policy, &reference, &dataset, &mut seed_rng, |_, _| {})
                .expect("dataset uses model vocabulary")
        })
        .collect();

    let epochs = per_seed[0].len();
    let aggregated = (0..epochs)
        .map(|e| {
            let agg = |f: fn(&EpochStats) -> f32| -> (f32, f32, f32) {
                let vals: Vec<f32> = per_seed.iter().map(|s| f(&s[e])).collect();
                let mean = vals.iter().sum::<f32>() / vals.len() as f32;
                let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
                let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                (mean, min, max)
            };
            Fig8Point {
                epoch: e,
                loss: agg(|s| s.loss),
                accuracy: agg(|s| s.accuracy),
                margin: agg(|s| s.margin),
            }
        })
        .collect();

    Fig8Result {
        per_seed,
        aggregated,
        dataset_size: dataset.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn aggregates_over_seeds_with_expected_shape() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let result = run(&pipeline, &[1, 2]);
        assert_eq!(result.per_seed.len(), 2);
        assert_eq!(result.aggregated.len(), pipeline.config.train.epochs);
        for p in &result.aggregated {
            assert!(p.loss.1 <= p.loss.0 && p.loss.0 <= p.loss.2);
            assert!((0.0..=1.0).contains(&p.accuracy.0));
        }
        // The DPO loss decreases from its ln 2 start.
        let first = result.aggregated.first().unwrap();
        let last = result.aggregated.last().unwrap();
        assert!(last.loss.0 < first.loss.0);
    }
}
