//! Figure 12: detector confidence→accuracy mappings in simulation vs the
//! real world, per object class.
//!
//! The paper's transfer argument (Section 5.3) needs the perception stack
//! to behave consistently across domains. This experiment reproduces the
//! measurement with the synthetic `vision` crate: a Grounded-SAM-like
//! detector is run over a sim dataset and a real dataset, detections are
//! binned by confidence, and the per-class curves are compared. A
//! deliberately domain-biased detector is measured alongside as the
//! negative control.

use serde::{Deserialize, Serialize};
use vision::{
    calibrate, consistency_gap, generate_dataset, CalibrationCurve, Detector, Domain, ObjectClass,
};

/// Calibration curves for one object class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassCurves {
    /// Object class.
    pub class: ObjectClass,
    /// Confidence→accuracy curve on simulator frames.
    pub sim: CalibrationCurve,
    /// Confidence→accuracy curve on real frames.
    pub real: CalibrationCurve,
    /// Count-weighted mean absolute accuracy gap between the curves.
    pub gap: f32,
}

/// The Figure 12 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Per-class curves for the consistent detector.
    pub consistent: Vec<ClassCurves>,
    /// Per-class gap for the domain-biased negative control.
    pub biased_gaps: Vec<(ObjectClass, f32)>,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig12Config {
    /// Frames per domain.
    pub frames: usize,
    /// Confidence bins.
    pub bins: usize,
    /// Accuracy penalty of the biased negative-control detector.
    pub bias: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            frames: 1500,
            bins: 10,
            bias: 0.25,
            seed: 31,
        }
    }
}

/// Runs the Figure 12 experiment.
pub fn run(cfg: Fig12Config) -> Fig12Result {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sim_frames = generate_dataset(Domain::Sim, cfg.frames, &mut rng);
    let real_frames = generate_dataset(Domain::Real, cfg.frames, &mut rng);

    let run_detector = |det: &Detector, rng: &mut StdRng| -> Vec<ClassCurves> {
        let sim_dets = det.detect_all(&sim_frames, rng);
        let real_dets = det.detect_all(&real_frames, rng);
        ObjectClass::all()
            .into_iter()
            .map(|class| {
                let sim: Vec<_> = sim_dets
                    .iter()
                    .filter(|d| d.class == class)
                    .copied()
                    .collect();
                let real: Vec<_> = real_dets
                    .iter()
                    .filter(|d| d.class == class)
                    .copied()
                    .collect();
                let sim_curve = calibrate(&sim, cfg.bins);
                let real_curve = calibrate(&real, cfg.bins);
                let gap = consistency_gap(&sim_curve, &real_curve);
                ClassCurves {
                    class,
                    sim: sim_curve,
                    real: real_curve,
                    gap,
                }
            })
            .collect()
    };

    let consistent = run_detector(&Detector::grounded_sam_like(), &mut rng);
    let biased = run_detector(&Detector::domain_biased(cfg.bias), &mut rng);
    let biased_gaps = biased.into_iter().map(|c| (c.class, c.gap)).collect();

    Fig12Result {
        consistent,
        biased_gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_detector_has_small_gap_biased_has_large() {
        let result = run(Fig12Config {
            frames: 800,
            ..Fig12Config::default()
        });
        assert_eq!(result.consistent.len(), 4);
        for c in &result.consistent {
            assert!(
                c.gap < 0.12,
                "{:?}: consistent detector gap too large: {}",
                c.class,
                c.gap
            );
            assert!(c.sim.count() > 100);
        }
        let mean_consistent: f32 = result.consistent.iter().map(|c| c.gap).sum::<f32>() / 4.0;
        let mean_biased: f32 = result.biased_gaps.iter().map(|&(_, g)| g).sum::<f32>() / 4.0;
        assert!(
            mean_biased > mean_consistent + 0.05,
            "bias should widen the gap: {mean_consistent} vs {mean_biased}"
        );
    }

    #[test]
    fn calibration_is_monotone_in_populated_bins() {
        // Higher-confidence bins should not be dramatically less accurate.
        let result = run(Fig12Config::default());
        for c in &result.consistent {
            let populated: Vec<_> = c.sim.bins.iter().filter(|b| b.count >= 30).collect();
            for w in populated.windows(2) {
                assert!(
                    w[1].accuracy >= w[0].accuracy - 0.15,
                    "{:?}: accuracy collapsed between bins {w:?}",
                    c.class
                );
            }
        }
    }
}
