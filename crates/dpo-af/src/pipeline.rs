//! The DPO-AF loop: sample responses → verify → rank → fine-tune.
//!
//! Stages are exposed individually so experiments can rewire them (e.g.
//! swapping formal verification for empirical feedback in ablation A1),
//! and [`DpoAf::run`] glues the standard pipeline together:
//!
//! 1. [`DpoAf::pretrained_lm`] — pretrain the base model on the mixed
//!    corpus ("Llama2 before fine-tuning"), then attach LoRA adapters.
//! 2. [`DpoAf::collect_dataset`] — sample `m` responses per training
//!    task, score each by the number of satisfied specifications, and
//!    form all strictly-ordered preference pairs (`N · C(m,2)` bound).
//! 3. DPO fine-tuning with per-epoch metrics (Figure 8) and a checkpoint
//!    evaluation every `checkpoint_every` epochs (Figure 9).

use crate::cache::{CachedScore, VerifyCache};
use crate::domain::DomainBundle;
use crate::domain::TaskSpec;
use crate::feedback::{
    empirical_rates, score_response, score_response_certified, score_tokens,
    score_tokens_certified, CertCounters,
};
use dpo::{DpoTrainer, EpochStats, PreferenceDataset, TrainOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use tinylm::{pretrain, AdaptMode, CondLm, KernelMode, LmConfig, PretrainOptions, SampleOptions};

/// Pipeline hyperparameters.
///
/// Defaults are scaled for a CPU-minutes run; the paper's GPU-scale
/// numbers (≈3000 pairs, 200 epochs, Llama2-7B) map onto the same code by
/// raising `responses_per_task`, `rounds` and `train.epochs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Master seed; every stage derives its RNG from it.
    pub seed: u64,
    /// Pretraining corpus size.
    pub corpus_size: usize,
    /// Pretraining options.
    pub pretrain: PretrainOptions,
    /// Responses sampled per task per round (`m`).
    pub responses_per_task: usize,
    /// Sampling rounds per task when building the dataset.
    pub rounds: usize,
    /// Sampling temperature during dataset collection.
    pub temperature: f32,
    /// LoRA rank attached after pretraining (0 = full fine-tuning).
    pub lora_rank: usize,
    /// DPO training options.
    pub train: TrainOptions,
    /// Evaluate a checkpoint every this many epochs (paper: 20).
    pub checkpoint_every: usize,
    /// Task ids excluded from DPO training and used as validation.
    pub validation_tasks: Vec<usize>,
    /// Responses sampled per task when evaluating a checkpoint.
    pub eval_samples: usize,
    /// Sampling temperature at evaluation time.
    pub eval_temperature: f32,
    /// DPO-AF iterations: after each DPO phase, a fresh dataset is
    /// sampled from the *improved* policy (with the policy snapshot as
    /// the new DPO reference) and training continues. The paper's
    /// automated feedback makes data "unlimited … until the language
    /// model converges" (Section 4), which is exactly this loop.
    pub iterations: usize,
    /// Language-model hidden width.
    pub lm_hidden: usize,
    /// Language-model context window (tokens).
    pub lm_context: usize,
    /// Where the ranking signal comes from (paper §4.2: formal
    /// verification, or empirical evaluation in the simulator when no
    /// world model is available).
    pub feedback: FeedbackSource,
    /// Certified mode: every model-checking verdict behind a score is
    /// accompanied by evidence (an emptiness certificate or a lasso
    /// counterexample) that `certkit`'s independent checker validates
    /// before the verdict may rank responses. A rejected certificate
    /// aborts the run — a silent model-checker bug would otherwise poison
    /// every preference pair. Off by default (it roughly doubles
    /// verification cost; see EXPERIMENTS.md).
    pub certified: bool,
    /// Worker threads for the formal-scoring fan-out (0 = resolve from
    /// `PARKIT_THREADS`, falling back to the machine's available
    /// parallelism). Purely a scheduling knob: artifacts are
    /// byte-identical at any thread count.
    pub threads: usize,
    /// Memoize formal verdicts by `(scenario, response text)` so repeated
    /// responses skip synthesis and model checking. Never changes scores
    /// or certified counters; on by default.
    pub verify_cache: bool,
    /// Maximum resident verdicts in the memo-cache (`None` = unbounded).
    /// Past the bound the least-recently-used entry in the affected shard
    /// is evicted (LRU — both hits and overwrites refresh recency) and
    /// `verify.cache_evictions` counts it. Purely a memory knob: an
    /// evicted verdict recomputes on the next miss, so artifacts are
    /// byte-identical at any capacity. The default bound keeps a
    /// long-running service's cache a working set, not a leak.
    pub verify_cache_capacity: Option<usize>,
    /// Precompute the frozen reference model's sequence log-probs once
    /// per DPO phase instead of re-running the reference forward for
    /// every pair visit. Exact memoization of a pure function — training
    /// trajectories and artifacts are byte-identical either way (see
    /// DESIGN.md §9); on by default.
    pub ref_cache: bool,
    /// Semantic pre-flight of the rule book
    /// ([`crate::feedback::preflight_rule_book_semantic`]): abort on
    /// `Error`-class `SL3xx` findings (empty-language or
    /// conflicting-under-world rules) before any sampling. A pure gate —
    /// artifacts are byte-identical with it on or off; on by default.
    /// The verdict is memoized process-wide, so the cost is one semantic
    /// sweep per process, not per run.
    pub semantic_preflight: bool,
    /// Which arithmetic the tinylm tape kernels use (see
    /// `tinylm::kernels`): `reference` (default) is bit-identical to the
    /// historical scalar loops; `fast` reassociates accumulation and
    /// fuses multiply-adds, trading byte identity for speed within the
    /// tolerance bounded by the `kernel_gate` CI gate. Set process-wide
    /// when the pipeline is constructed.
    pub kernel_mode: KernelMode,
    /// Run the DPO backward pass with its matmul gradient work fanned
    /// over the worker pool (intra-pair parallelism) instead of fanning
    /// whole pairs out. Byte-identical at any thread count either way;
    /// off by default.
    pub pool_backward: bool,
}

/// The source of the automated ranking signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedbackSource {
    /// Model-check the controller against the 15 specifications in the
    /// task's scenario model (paper Equation 1).
    Formal,
    /// Run the controller in the simulator and count specifications whose
    /// satisfaction rate `P_Φ` reaches 1.0 over the episodes (paper
    /// Equation 2). Chosen when a world model cannot be obtained.
    Empirical {
        /// Episodes per response.
        episodes: usize,
        /// Ticks per episode.
        steps: usize,
    },
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 7,
            corpus_size: 1200,
            pretrain: PretrainOptions {
                epochs: 8,
                lr: 0.01,
                batch_size: 16,
            },
            responses_per_task: 6,
            rounds: 4,
            temperature: 1.1,
            lora_rank: 4,
            // `epochs` is per DPO-AF iteration; with the default 3
            // iterations the total schedule is ≈200 epochs, the paper's
            // x-axis range.
            train: TrainOptions {
                beta: 0.6,
                lr: 1.5e-3,
                batch_size: 8,
                epochs: 68,
                pairs_per_epoch: Some(48),
            },
            checkpoint_every: 20,
            validation_tasks: vec![6, 8],
            eval_samples: 6,
            eval_temperature: 0.6,
            iterations: 4,
            lm_hidden: 64,
            lm_context: 5,
            feedback: FeedbackSource::Formal,
            certified: false,
            threads: 0,
            verify_cache: true,
            verify_cache_capacity: Some(1 << 16),
            ref_cache: true,
            semantic_preflight: true,
            kernel_mode: KernelMode::Reference,
            pool_backward: false,
        }
    }
}

impl PipelineConfig {
    /// A heavily reduced configuration for tests.
    pub fn smoke() -> Self {
        PipelineConfig {
            corpus_size: 150,
            pretrain: PretrainOptions {
                epochs: 2,
                lr: 0.01,
                batch_size: 16,
            },
            responses_per_task: 3,
            rounds: 1,
            train: TrainOptions {
                epochs: 4,
                pairs_per_epoch: Some(8),
                ..TrainOptions::default()
            },
            checkpoint_every: 2,
            eval_samples: 1,
            iterations: 1,
            lm_hidden: 24,
            lm_context: 3,
            // The semantic sweep over all five scenario worlds is a
            // release-grade workload; keep the many debug-mode smoke
            // tests fast. The gate itself is covered by speclint's own
            // tests and the instrumented headline run in CI.
            semantic_preflight: false,
            ..PipelineConfig::default()
        }
    }
}

/// One checkpoint evaluation point — a sample of the Figure 9 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEval {
    /// DPO epoch at which the checkpoint was taken (0 = pre-fine-tuning).
    pub epoch: usize,
    /// Mean number of satisfied specifications over sampled responses to
    /// *training* tasks.
    pub train_score: f64,
    /// Same over held-out *validation* tasks.
    pub val_score: f64,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunArtifacts {
    /// The frozen pre-fine-tuning model (the DPO reference).
    pub reference: CondLm,
    /// The fine-tuned policy.
    pub policy: CondLm,
    /// Per-epoch DPO metrics (Figure 8 panels).
    pub epoch_stats: Vec<EpochStats>,
    /// Checkpoint evaluations, including epoch 0 (Figure 9 series).
    pub checkpoint_evals: Vec<CheckpointEval>,
    /// Number of preference pairs collected.
    pub dataset_size: usize,
    /// Certificate-validation counters accumulated over the whole run.
    /// All zeros unless [`PipelineConfig::certified`] was set.
    pub cert: CertCounters,
}

impl RunArtifacts {
    /// Serializes the artifacts to a JSON file, so expensive runs can be
    /// checkpointed to disk and post-processed by other experiments.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Loads artifacts previously written by [`RunArtifacts::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<RunArtifacts> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }
}

/// The assembled DPO-AF pipeline.
#[derive(Debug)]
pub struct DpoAf {
    /// The task domain.
    pub bundle: DomainBundle,
    /// Hyperparameters.
    pub config: PipelineConfig,
    /// Accumulated certificate-validation counters (certified mode).
    /// Interior mutability because scoring happens behind `&self` in
    /// sampling and evaluation closures; a mutex (not a `RefCell`)
    /// because those closures run on pool workers.
    cert_counters: Mutex<CertCounters>,
    /// Memoized formal verdicts, shared across rounds, iterations and
    /// checkpoint evaluations.
    cache: VerifyCache,
    /// The work-stealing pool behind the scoring fan-out.
    pool: parkit::ThreadPool,
}

impl DpoAf {
    /// Creates a pipeline over a fresh [`DomainBundle`]. Sets the
    /// process-global tinylm kernel mode to
    /// [`PipelineConfig::kernel_mode`] — tapes capture it on their next
    /// reset, so every workspace (including pool workers' thread-locals)
    /// follows the configured mode.
    pub fn new(config: PipelineConfig) -> Self {
        tinylm::kernels::set_mode(config.kernel_mode);
        DpoAf {
            bundle: DomainBundle::new(),
            cert_counters: Mutex::new(CertCounters::default()),
            cache: VerifyCache::new(config.verify_cache_capacity),
            pool: parkit::ThreadPool::with_threads(config.threads),
            config,
        }
    }

    fn lock_cert(&self) -> std::sync::MutexGuard<'_, CertCounters> {
        match self.cert_counters.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The certificate-validation counters accumulated so far (all zeros
    /// unless [`PipelineConfig::certified`] is set).
    pub fn cert_counters(&self) -> CertCounters {
        *self.lock_cert()
    }

    /// The pool the scoring fan-out runs on.
    pub fn pool(&self) -> &parkit::ThreadPool {
        &self.pool
    }

    /// `(hits, misses)` of the verification memo-cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The language-model configuration implied by the domain.
    pub fn lm_config(&self) -> LmConfig {
        LmConfig {
            vocab_size: self.bundle.tokenizer.vocab_size(),
            num_tasks: self.bundle.tasks.len(),
            adapt: AdaptMode::Full,
            hidden: self.config.lm_hidden,
            context: self.config.lm_context,
            ..LmConfig::default()
        }
    }

    /// Pretrains the base model on the mixed-quality corpus and attaches
    /// the configured adapters — the "pre-trained language model" DPO-AF
    /// starts from.
    pub fn pretrained_lm(&self, rng: &mut impl Rng) -> CondLm {
        let _stage = obskit::span("pipeline.pretrain");
        let mut lm = CondLm::new(self.lm_config(), rng);
        let corpus = self.bundle.pretraining_corpus(self.config.corpus_size, rng);
        pretrain(&mut lm, &corpus, self.config.pretrain, rng);
        if self.config.lora_rank > 0 {
            lm.convert_adapt(
                AdaptMode::Lora {
                    rank: self.config.lora_rank,
                },
                rng,
            )
        } else {
            lm
        }
    }

    /// Task ids used for DPO training (everything not held out).
    pub fn training_tasks(&self) -> Vec<usize> {
        (0..self.bundle.tasks.len())
            .filter(|t| !self.config.validation_tasks.contains(t))
            .collect()
    }

    /// Scores one response under the configured [`FeedbackSource`]: the
    /// number of specifications satisfied, by model checking or by
    /// simulator rollouts.
    ///
    /// Formal feedback never touches `rng` — the verdict is a pure
    /// function of the scenario and the decoded text, which is what makes
    /// the parallel fan-out and the memo-cache sound (see
    /// [`DpoAf::score_formal`]).
    pub fn score(&self, task: &TaskSpec, tokens: &[tinylm::Token], rng: &mut impl Rng) -> usize {
        match self.config.feedback {
            FeedbackSource::Formal => self.score_formal(task, &self.bundle.decode(tokens)),
            FeedbackSource::Empirical { episodes, steps } => {
                self.score_empirical(task, tokens, episodes, steps, rng)
            }
        }
    }

    /// Formal scoring: deterministic, RNG-free, memoized.
    ///
    /// On a cache hit the stored verdict is returned without re-running
    /// synthesis or model checking; in certified mode the hit also
    /// re-accounts the stored certificate counters, so a run's totals are
    /// identical with the cache on or off — every verdict that ranks a
    /// response is counted once per use, and was independently validated
    /// when first produced.
    pub fn score_formal(&self, task: &TaskSpec, text: &str) -> usize {
        obskit::counter_add("pipeline.responses_scored", 1);
        if self.config.verify_cache {
            if let Some(hit) = self.cache.lookup(task.scenario, text) {
                if self.config.certified {
                    self.lock_cert().add(hit.cert);
                }
                return hit.num_satisfied;
            }
        }
        let (num_satisfied, cert) = if self.config.certified {
            let (scored, counters) = score_response_certified(&self.bundle, task, text);
            obskit::counter_add("pipeline.certificates_validated", counters.checks as u64);
            self.lock_cert().add(counters);
            (scored.num_satisfied, counters)
        } else {
            (
                score_response(&self.bundle, task, text).num_satisfied,
                CertCounters::default(),
            )
        };
        if self.config.verify_cache {
            self.cache.insert(
                task.scenario,
                text,
                CachedScore {
                    num_satisfied,
                    cert,
                },
            );
        }
        num_satisfied
    }

    /// Empirical scoring: verify the controller synthesizes, then count
    /// specifications whose simulator satisfaction rate reaches 1.0.
    /// Consumes `rng` for the rollouts, so it stays serial and uncached.
    fn score_empirical(
        &self,
        task: &TaskSpec,
        tokens: &[tinylm::Token],
        episodes: usize,
        steps: usize,
        rng: &mut impl Rng,
    ) -> usize {
        obskit::counter_add("pipeline.responses_scored", 1);
        let scored = if self.config.certified {
            let (scored, counters) = score_tokens_certified(&self.bundle, task, tokens);
            obskit::counter_add("pipeline.certificates_validated", counters.checks as u64);
            self.lock_cert().add(counters);
            scored
        } else {
            score_tokens(&self.bundle, task, tokens)
        };
        match &scored.controller {
            None => 0,
            Some(ctrl) => {
                let rates = empirical_rates(&self.bundle, task, ctrl, episodes, steps, rng);
                rates.iter().filter(|&&(_, r)| r >= 0.999).count()
            }
        }
    }

    /// Scores a batch of decoded responses with one pool task each,
    /// joining index-ordered: callers see the same scores in the same
    /// positions at any thread count. Workers parent their spans under
    /// the caller's `pipeline.score_batch` span via an obskit handoff.
    fn score_formal_batch<'p, T: Sync>(
        &'p self,
        items: &[T],
        task_of: impl Fn(&T) -> &'p TaskSpec + Sync,
        text_of: impl Fn(&T) -> &str + Sync,
    ) -> Vec<usize> {
        let batch = obskit::span("pipeline.score_batch");
        let handoff = batch.handoff();
        let scores = self.pool.map(items, |_, item| {
            let _s = obskit::span_under("pipeline.score", handoff);
            self.score_formal(task_of(item), text_of(item))
        });
        // Scored batches are a natural flight-recorder beat (throttled).
        obskit::recorder::tick();
        scores
    }

    /// Samples `m` responses per training task per round, scores each by
    /// the configured feedback source, and assembles all strictly-ordered
    /// preference pairs.
    ///
    /// Under formal feedback, each task's `m` responses are sampled
    /// serially (sampling drives the RNG) and then scored as one parallel
    /// fan-out — scoring is RNG-free, so the RNG stream, and with it every
    /// artifact, is identical to the fully serial interleaved loop.
    /// Empirical feedback keeps that interleaved loop: its rollouts
    /// consume the RNG, so reordering them would change the run.
    // ALLOW: task ids come from the bundle itself, so sampling cannot see an
    // out-of-range id; fail loudly if it somehow does.
    #[allow(clippy::expect_used)]
    pub fn collect_dataset(&self, lm: &CondLm, rng: &mut impl Rng) -> PreferenceDataset {
        let _stage = obskit::span("pipeline.collect");
        let opts = SampleOptions {
            temperature: self.config.temperature,
            max_len: 60,
            ..SampleOptions::default()
        };
        let mut dataset = PreferenceDataset::new();
        for _ in 0..self.config.rounds {
            for &tid in &self.training_tasks() {
                let task = &self.bundle.tasks[tid];
                let scored: Vec<(Vec<tinylm::Token>, usize)> = match self.config.feedback {
                    FeedbackSource::Formal => {
                        let sampled: Vec<(Vec<tinylm::Token>, String)> =
                            (0..self.config.responses_per_task)
                                .map(|_| {
                                    let tokens = {
                                        let _s = obskit::span("pipeline.sample");
                                        lm.sample(tid, rng, opts).expect("task id in range")
                                    };
                                    let text = self.bundle.decode(&tokens);
                                    (tokens, text)
                                })
                                .collect();
                        let scores =
                            self.score_formal_batch(&sampled, |_| task, |(_, text)| text.as_str());
                        sampled
                            .into_iter()
                            .zip(scores)
                            .map(|((tokens, _), score)| (tokens, score))
                            .collect()
                    }
                    FeedbackSource::Empirical { .. } => (0..self.config.responses_per_task)
                        .map(|_| {
                            let tokens = {
                                let _s = obskit::span("pipeline.sample");
                                lm.sample(tid, rng, opts).expect("task id in range")
                            };
                            let score = self.score(task, &tokens, rng);
                            (tokens, score)
                        })
                        .collect(),
                };
                let before = dataset.len();
                {
                    let _s = obskit::span("pipeline.rank");
                    dataset.add_scored(tid, &scored);
                }
                obskit::counter_add("pipeline.pairs_formed", (dataset.len() - before) as u64);
            }
        }
        dataset
    }

    /// Mean number of satisfied specifications over `eval_samples`
    /// responses per listed task.
    ///
    /// Same phase split as [`DpoAf::collect_dataset`]: under formal
    /// feedback the whole checkpoint's samples are drawn serially, then
    /// scored in one parallel fan-out (summing `usize` scores is
    /// order-independent, so the mean is exact at any thread count).
    // ALLOW: task ids come from the bundle itself, so sampling cannot see an
    // out-of-range id; fail loudly if it somehow does.
    #[allow(clippy::expect_used)]
    pub fn evaluate(&self, lm: &CondLm, tasks: &[usize], rng: &mut impl Rng) -> f64 {
        let _stage = obskit::span("pipeline.eval");
        let opts = SampleOptions {
            temperature: self.config.eval_temperature,
            max_len: 60,
            ..SampleOptions::default()
        };
        let (total, count) = match self.config.feedback {
            FeedbackSource::Formal => {
                let mut sampled: Vec<(usize, String)> = Vec::new();
                for &tid in tasks {
                    for _ in 0..self.config.eval_samples {
                        let tokens = lm.sample(tid, rng, opts).expect("task id in range");
                        sampled.push((tid, self.bundle.decode(&tokens)));
                    }
                }
                let scores = self.score_formal_batch(
                    &sampled,
                    |&(tid, _)| &self.bundle.tasks[tid],
                    |(_, text)| text.as_str(),
                );
                (scores.iter().sum::<usize>(), sampled.len())
            }
            FeedbackSource::Empirical { .. } => {
                let mut total = 0usize;
                let mut count = 0usize;
                for &tid in tasks {
                    let task = &self.bundle.tasks[tid];
                    for _ in 0..self.config.eval_samples {
                        let tokens = lm.sample(tid, rng, opts).expect("task id in range");
                        total += self.score(task, &tokens, rng);
                        count += 1;
                    }
                }
                (total, count)
            }
        };
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Runs the full pipeline: pretrain, then `iterations` rounds of
    /// (collect a dataset from the current policy → DPO against a frozen
    /// snapshot), with checkpoint evaluations throughout.
    ///
    /// The returned `reference` is the original pre-trained model (the
    /// "before fine-tuning" baseline); each iteration's DPO reference is
    /// the policy snapshot entering that iteration.
    // ALLOW: task ids come from the bundle itself, so training cannot see
    // out-of-vocabulary tokens; fail loudly if it somehow does.
    #[allow(clippy::expect_used)]
    pub fn run(&self) -> RunArtifacts {
        // Pre-flight: a rule book with lint errors (unsatisfiable or
        // pairwise-conflicting rules) would cap every response's score and
        // corrupt the preference signal, so refuse to train on one.
        if let Err(errors) = crate::feedback::preflight_rule_book(&self.bundle.driving) {
            panic!("driving rule book failed the speclint pre-flight gate: {errors:?}");
        }
        // Semantic pre-flight: the syntactic pass cannot see rules that
        // are individually healthy but conflict (or are vacuous) under
        // the scenario worlds verification actually runs in.
        if self.config.semantic_preflight {
            let _preflight = obskit::span("pipeline.semantic_preflight");
            if let Err(errors) = crate::feedback::preflight_rule_book_semantic(&self.bundle.driving)
            {
                panic!("driving rule book failed the semantic pre-flight gate: {errors:?}");
            }
        }

        let _run = obskit::span("pipeline.run");
        // Register the pool/cache metrics up front so instrumented runs
        // report them even when they stay at zero (single thread, cache
        // off, no contention).
        for name in [
            "pool.tasks",
            "pool.steals",
            "verify.cache_hits",
            "verify.cache_misses",
            "verify.cache_evictions",
            "dpo.ref_cache_hits",
            "tape.nodes",
            "tape.grad_buffer_reuses",
            "speclint.semantic_rules",
            "speclint.semantic_checks",
            "speclint.semantic_errors",
            "speclint.semantic_notes",
        ] {
            obskit::counter_add(name, 0);
        }
        obskit::gauge_set("pool.threads", self.pool.threads() as f64);
        obskit::gauge_set("verify.cache_entries", 0.0);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let pretrained = self.pretrained_lm(&mut rng);

        let trainer = DpoTrainer::new(self.config.train)
            .with_ref_cache(self.config.ref_cache)
            .with_pool_backward(self.config.pool_backward);
        let train_tasks = self.training_tasks();
        let val_tasks = self.config.validation_tasks.clone();
        let mut evals = Vec::new();
        let mut eval_rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);

        // Epoch-0 (pre-fine-tuning) point.
        evals.push(CheckpointEval {
            epoch: 0,
            train_score: self.evaluate(&pretrained, &train_tasks, &mut eval_rng),
            val_score: self.evaluate(&pretrained, &val_tasks, &mut eval_rng),
        });

        let every = self.config.checkpoint_every.max(1);
        let mut policy = pretrained.clone();
        let mut epoch_stats = Vec::new();
        let mut dataset_size = 0;
        let mut epoch_base = 0;
        for iteration in 0..self.config.iterations.max(1) {
            let dataset = self.collect_dataset(&policy, &mut rng);
            assert!(
                !dataset.is_empty(),
                "verification feedback produced no strict preferences"
            );
            dataset_size += dataset.len();
            let (hits, misses) = self.cache_stats();
            if hits + misses > 0 {
                obskit::gauge_set(
                    "verify.cache_hit_rate",
                    hits as f64 / (hits + misses) as f64,
                );
            }
            obskit::event(
                "pipeline.iteration",
                vec![
                    ("iteration", iteration.into()),
                    ("pairs", dataset.len().into()),
                    ("total_pairs", dataset_size.into()),
                ],
            );
            // Iteration boundaries are the flight recorder's interesting
            // edges; sample unconditionally.
            obskit::recorder::force_tick();
            obskit::progress!(
                "iteration {iteration}: {} preference pairs collected ({dataset_size} total)",
                dataset.len()
            );
            let reference = policy.clone();
            let base = epoch_base;
            let stats = {
                let _stage = obskit::span("pipeline.train");
                let evals = &mut evals;
                let eval_rng = &mut eval_rng;
                trainer
                    .train_in(
                        &mut policy,
                        &reference,
                        &dataset,
                        &mut rng,
                        |epoch, lm| {
                            let global = base + epoch + 1;
                            if global % every == 0 {
                                evals.push(CheckpointEval {
                                    epoch: global,
                                    train_score: self.evaluate(lm, &train_tasks, eval_rng),
                                    val_score: self.evaluate(lm, &val_tasks, eval_rng),
                                });
                            }
                        },
                        Some(&self.pool),
                    )
                    .expect("dataset uses model vocabulary")
            };
            epoch_base += stats.len();
            epoch_stats.extend(stats.into_iter().map(|mut s| {
                s.epoch += base;
                s
            }));
        }

        RunArtifacts {
            reference: pretrained,
            policy,
            epoch_stats,
            checkpoint_evals: evals,
            dataset_size,
            cert: self.cert_counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    /// The semantic gate is on for real runs; the smoke configuration
    /// opts out so the (release-grade) semantic sweep stays out of the
    /// debug-mode test suite. Its correctness is covered by speclint's
    /// own preset tests and the instrumented headline run in CI.
    #[test]
    fn semantic_preflight_defaults() {
        assert!(PipelineConfig::default().semantic_preflight);
        assert!(!PipelineConfig::smoke().semantic_preflight);
    }

    #[test]
    fn smoke_run_produces_artifacts() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let artifacts = pipeline.run();
        assert!(artifacts.dataset_size > 0);
        // Certified mode is opt-in: the default smoke run never touches
        // the certificate checker.
        assert_eq!(artifacts.cert, CertCounters::default());
        assert_eq!(artifacts.epoch_stats.len(), 4);
        // Epoch 0 plus epochs 2 and 4.
        assert_eq!(artifacts.checkpoint_evals.len(), 3);
        assert_eq!(artifacts.checkpoint_evals[0].epoch, 0);
        assert_ne!(artifacts.policy.params(), artifacts.reference.params());

        // Save/load round-trip.
        let path = std::env::temp_dir().join("dpo_af_artifacts_test.json");
        artifacts.save(&path).expect("writable temp dir");
        let back = RunArtifacts::load(&path).expect("readable file");
        assert_eq!(back.dataset_size, artifacts.dataset_size);
        assert_eq!(back.policy.params(), artifacts.policy.params());
        let _ = std::fs::remove_file(path);
    }

    /// A certified run validates the evidence behind every verdict it
    /// ranks with: the counters in the artifacts account for each
    /// synthesized response's full 15-specification sweep.
    #[test]
    fn certified_run_counts_every_verdict() {
        let mut cfg = PipelineConfig::smoke();
        cfg.certified = true;
        cfg.responses_per_task = 2;
        cfg.train.epochs = 2;
        cfg.train.pairs_per_epoch = Some(4);
        cfg.checkpoint_every = 100;
        let pipeline = DpoAf::new(cfg);
        let artifacts = pipeline.run();
        assert!(artifacts.cert.checks > 0);
        // Rejected responses skip verification entirely; every verified
        // one is checked against the whole 15-rule book.
        assert_eq!(artifacts.cert.checks % 15, 0, "{:?}", artifacts.cert);
        assert_eq!(
            artifacts.cert.holds + artifacts.cert.fails,
            artifacts.cert.checks
        );
        assert_eq!(artifacts.cert, pipeline.cert_counters());
    }

    /// The scoring fan-out and the memo-cache are pure performance
    /// features: a smoke run serializes to the same bytes at 1 or 4
    /// threads, cache on or off — and at a pathologically tiny cache
    /// capacity, where almost every verdict is evicted and recomputed.
    #[test]
    fn artifacts_identical_across_threads_and_cache() {
        let mut cfg = PipelineConfig::smoke();
        cfg.threads = 1;
        cfg.verify_cache = true;
        let baseline = serde_json::to_string(&DpoAf::new(cfg.clone()).run()).expect("serializes");
        for (threads, cache, capacity) in [
            (4, true, Some(1 << 16)),
            (1, false, Some(1 << 16)),
            (1, true, Some(4)),
        ] {
            cfg.threads = threads;
            cfg.verify_cache = cache;
            cfg.verify_cache_capacity = capacity;
            let run = serde_json::to_string(&DpoAf::new(cfg.clone()).run()).expect("serializes");
            assert_eq!(
                baseline, run,
                "threads={threads} cache={cache} capacity={capacity:?}"
            );
        }
    }

    /// A cache hit returns exactly the verdict a fresh computation
    /// produces, and the hit/miss counters track lookups.
    #[test]
    fn memo_cache_hit_matches_fresh_verdict() {
        let mut cfg = PipelineConfig::smoke();
        cfg.threads = 1;
        let pipeline = DpoAf::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let task = &pipeline.bundle.tasks[0];
        let text = crate::domain::render_response(
            &pipeline.bundle.driving,
            task,
            crate::domain::Style::Careful,
            &mut rng,
        );
        let tokens = pipeline.bundle.tokenizer.encode(&text);
        let first = pipeline.score(task, &tokens, &mut rng);
        let again = pipeline.score(task, &tokens, &mut rng);
        assert_eq!(first, again);
        assert_eq!(pipeline.cache_stats(), (1, 1));

        // An uncached pipeline agrees and never touches its cache.
        let mut cfg = PipelineConfig::smoke();
        cfg.verify_cache = false;
        let uncached = DpoAf::new(cfg);
        assert_eq!(uncached.score(task, &tokens, &mut rng), first);
        assert_eq!(uncached.score(task, &tokens, &mut rng), first);
        assert_eq!(uncached.cache_stats(), (0, 0));
    }

    /// In certified mode a cache hit re-accounts the stored certificate
    /// counters, so totals stay exact: two scorings of the same response
    /// count its 15 verdicts twice even though only the first validated
    /// certificates.
    #[test]
    fn certified_cache_hits_keep_counters_exact() {
        let mut cfg = PipelineConfig::smoke();
        cfg.certified = true;
        cfg.threads = 1;
        let pipeline = DpoAf::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let task = &pipeline.bundle.tasks[0];
        let text = crate::domain::render_response(
            &pipeline.bundle.driving,
            task,
            crate::domain::Style::Careful,
            &mut rng,
        );
        let tokens = pipeline.bundle.tokenizer.encode(&text);
        let first = pipeline.score(task, &tokens, &mut rng);
        let again = pipeline.score(task, &tokens, &mut rng);
        assert_eq!(first, again);
        assert_eq!(pipeline.cache_stats(), (1, 1));
        let counters = pipeline.cert_counters();
        assert_eq!(counters.checks, 30, "{counters:?}");
        assert_eq!(counters.holds, 2 * first, "{counters:?}");
        assert_eq!(counters.holds + counters.fails, counters.checks);
    }

    /// Certified artifacts — including the accumulated certificate
    /// counters — are identical with the cache on (and a pooled fan-out)
    /// and fully off.
    #[test]
    fn certified_artifacts_identical_with_and_without_cache() {
        let mut cfg = PipelineConfig::smoke();
        cfg.certified = true;
        cfg.responses_per_task = 2;
        cfg.train.epochs = 2;
        cfg.train.pairs_per_epoch = Some(4);
        cfg.checkpoint_every = 100;
        cfg.threads = 1;
        cfg.verify_cache = false;
        let fresh = DpoAf::new(cfg.clone()).run();
        cfg.verify_cache = true;
        cfg.threads = 2;
        let cached = DpoAf::new(cfg).run();
        assert_eq!(fresh.cert, cached.cert);
        assert_eq!(
            serde_json::to_string(&fresh).expect("serializes"),
            serde_json::to_string(&cached).expect("serializes"),
        );
    }

    #[test]
    fn training_tasks_exclude_validation() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let train = pipeline.training_tasks();
        assert_eq!(train.len(), 8);
        for v in &pipeline.config.validation_tasks {
            assert!(!train.contains(v));
        }
    }

    #[test]
    fn empirical_feedback_scores_sensibly() {
        let mut cfg = PipelineConfig::smoke();
        cfg.feedback = FeedbackSource::Empirical {
            episodes: 3,
            steps: 20,
        };
        let pipeline = DpoAf::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let task = &pipeline.bundle.tasks[0];
        // A careful response scores higher than a reckless one under the
        // simulator-based signal too.
        let careful = pipeline
            .bundle
            .tokenizer
            .encode(&crate::domain::render_response(
                &pipeline.bundle.driving,
                task,
                crate::domain::Style::Careful,
                &mut rng,
            ));
        let reckless = pipeline
            .bundle
            .tokenizer
            .encode(&crate::domain::render_response(
                &pipeline.bundle.driving,
                task,
                crate::domain::Style::Reckless,
                &mut rng,
            ));
        let c = pipeline.score(task, &careful, &mut rng);
        let r = pipeline.score(task, &reckless, &mut rng);
        assert!(c <= 15 && r <= 15);
        assert!(
            c > r,
            "careful {c} !> reckless {r} under empirical feedback"
        );
    }

    #[test]
    fn evaluate_is_bounded_by_spec_count() {
        let pipeline = DpoAf::new(PipelineConfig::smoke());
        let mut rng = StdRng::seed_from_u64(0);
        let lm = pipeline.pretrained_lm(&mut rng);
        let score = pipeline.evaluate(&lm, &[0, 1], &mut rng);
        assert!((0.0..=15.0).contains(&score), "{score}");
    }
}
