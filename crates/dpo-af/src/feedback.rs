//! Automated feedback: the verification side of DPO-AF.
//!
//! Each response is aligned, parsed and compiled to an FSA controller,
//! implemented in its task's scenario world model, and checked against
//! the 15 driving specifications. The number of satisfied specifications
//! is the response's score — the signal that replaces human preference
//! labels (paper Section 4.2–4.3).
//!
//! Verification runs under per-scenario **justice** assumptions (the
//! environment does not blockade the vehicle forever), mirroring NuSMV
//! `JUSTICE` declarations; without them the liveness rules Φ₇/Φ₁₀/Φ₁₃
//! are unsatisfiable against a fully adversarial environment.

use crate::domain::{DomainBundle, TaskSpec};
use autokit::{presets::DrivingDomain, Controller, DeadlockPolicy, Product, WorldModel};
use drivesim::ScenarioKind;
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::driving_specs;
use ltlcheck::{verify_all_fair, Justice, SpecResult, VerificationReport};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// FSA-construction options for the driving domain: `stop` is a
/// *reactive* action (`"if the light is not green, stop"` applies only
/// while its condition holds), every maneuver is *blocking* (the vehicle
/// waits for its precondition).
pub fn fsa_options(d: &DrivingDomain) -> FsaOptions {
    FsaOptions {
        non_blocking: autokit::ActSet::singleton(d.stop),
        ..FsaOptions::default()
    }
}

/// The scenario's world model (paper Figures 5, 6, 15, 16, 17).
///
/// Thin re-export of [`drivesim::formal::scenario_model`], the single
/// source of truth shared with `speclint` and `certkit`.
pub fn scenario_model(d: &DrivingDomain, kind: ScenarioKind) -> WorldModel {
    drivesim::formal::scenario_model(d, kind)
}

/// The scenario's justice assumptions: infinitely often, the intersection
/// is clear (and its light, if any, is green) — i.e. the environment
/// eventually gives the vehicle a chance to move.
///
/// Thin re-export of [`drivesim::formal::scenario_justice`].
pub fn justice_for(d: &DrivingDomain, kind: ScenarioKind) -> Vec<Justice> {
    drivesim::formal::scenario_justice(d, kind)
}

/// Pre-flight static analysis of the rule book: runs the `speclint` spec
/// analyzers (satisfiability, tautology, conflicts, subsumption) and
/// returns the `Error`-severity findings, if any.
///
/// The pipeline refuses to start on a rule book that fails this gate: an
/// unsatisfiable or pairwise-conflicting rule would silently cap every
/// response's score, corrupting the preference signal rather than merely
/// weakening it.
pub fn preflight_rule_book(d: &DrivingDomain) -> Result<(), Vec<speclint::Diagnostic>> {
    let diags = speclint::lint_specs(&driving_specs(d), &[], Some(&d.vocab));
    let errors: Vec<speclint::Diagnostic> = diags
        .into_iter()
        .filter(|diag| diag.severity == speclint::Severity::Error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Semantic pre-flight of the rule book (`SL3xx`): checks every spec's
/// satisfiability and the pairwise conflicts under all five scenario
/// worlds via the ltlcheck automaton machinery, and returns the
/// `Error`-severity findings (`SL300` empty language, `SL303`
/// conflict-under-world), if any. Note-class findings — per-world
/// vacuity, subsumption — are expected in a healthy book and do not
/// gate. Corpus discrimination (`SL305`) needs a response corpus the
/// pipeline does not have yet, so the gate runs worlds-only.
///
/// The verdict is memoized process-wide: the shipped rule book and
/// scenario models are fixed at compile time, so every run after the
/// first returns the cached result. The first run's model-checking
/// queries are counted in the obskit `speclint.semantic_*` metrics.
pub fn preflight_rule_book_semantic(d: &DrivingDomain) -> Result<(), Vec<speclint::Diagnostic>> {
    static VERDICT: OnceLock<Result<(), Vec<speclint::Diagnostic>>> = OnceLock::new();
    VERDICT
        .get_or_init(|| {
            let free = speclint::presets::free_controller(
                "free (driving)",
                &[d.stop, d.turn_left, d.turn_right, d.go_straight].map(autokit::ActSet::singleton),
            );
            let mut input = speclint::SemanticInput {
                specs: driving_specs(d),
                vocab: Some(d.vocab.clone()),
                ..Default::default()
            };
            for kind in ScenarioKind::all() {
                input.worlds.push(speclint::SemanticWorld::from_parts(
                    format!("{kind:?}"),
                    &scenario_model(d, kind),
                    &free,
                    justice_for(d, kind),
                ));
            }
            let errors: Vec<speclint::Diagnostic> = speclint::semantic::analyze(&input)
                .into_iter()
                .filter(|diag| diag.severity == speclint::Severity::Error)
                .collect();
            if errors.is_empty() {
                Ok(())
            } else {
                Err(errors)
            }
        })
        .clone()
}

/// Pre-flight static analysis of one response's step list: runs the
/// `speclint` step analyzers and returns the `Error`-severity findings
/// (unparseable steps), if any.
///
/// [`score_response`] calls this before model checking; a rejected
/// response scores 0, the same rank the paper assigns to responses that
/// fail to align (property-1 failures).
pub fn preflight_response(
    bundle: &DomainBundle,
    task: &TaskSpec,
    text: &str,
) -> Result<(), Vec<speclint::Diagnostic>> {
    let steps = DomainBundle::split_steps(text);
    let diags = speclint::lint_steps(&task.prompt, &steps, &bundle.lexicon, &bundle.driving.vocab);
    let errors: Vec<speclint::Diagnostic> = diags
        .into_iter()
        .filter(|diag| diag.severity == speclint::Severity::Error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Counters from certified-mode verification: how many verdicts were
/// produced and independently validated, by polarity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertCounters {
    /// Verdicts produced and certificate-checked.
    pub checks: usize,
    /// `Holds` verdicts whose emptiness certificate validated.
    pub holds: usize,
    /// `Fails` verdicts whose counterexample validated.
    pub fails: usize,
}

impl CertCounters {
    /// Accumulates another batch of counters into this one.
    pub fn add(&mut self, other: CertCounters) {
        self.checks += other.checks;
        self.holds += other.holds;
        self.fails += other.fails;
    }
}

/// [`verify_all_fair`] with certificates: every verdict's evidence is
/// validated by `certkit`'s independent checker before it is allowed
/// into the report.
///
/// # Panics
///
/// Panics when a certificate or counterexample is rejected — that means
/// the model checker produced an unsupported verdict, and training on it
/// would poison the preference signal. Fail loudly, never rank.
pub fn verify_all_fair_certified<'a>(
    model: &WorldModel,
    ctrl: &Controller,
    specs: impl IntoIterator<Item = (&'a str, &'a ltlcheck::Ltl)>,
    justice: &[Justice],
) -> (VerificationReport, CertCounters) {
    let graph = Product::build(model, ctrl).label_graph(DeadlockPolicy::Stutter);
    let mut counters = CertCounters::default();
    let results = specs
        .into_iter()
        .map(|(name, phi)| {
            let certified = ltlcheck::check_graph_fair_certified(&graph, phi, justice);
            if let Err(e) = certkit::check_certified(&graph, phi, justice, &certified) {
                panic!("model-checker evidence for `{name}` rejected: {e}");
            }
            counters.checks += 1;
            if certified.holds() {
                counters.holds += 1;
            } else {
                counters.fails += 1;
            }
            SpecResult {
                name: name.to_owned(),
                verdict: certified.verdict(),
            }
        })
        .collect();
    (VerificationReport { results }, counters)
}

/// [`verify_all_fair_certified`] with the per-specification checks fanned
/// out across `pool`: the product graph is built once, then each
/// specification is checked *and* certificate-validated on whichever
/// worker picks it up. Results join in specification order, so the report
/// and counters are identical to the sequential path at any thread count.
///
/// # Panics
///
/// Panics when a certificate or counterexample is rejected (see
/// [`verify_all_fair_certified`]); a panic on a worker propagates to the
/// caller once the sweep finishes.
pub fn verify_all_fair_certified_pooled<'a>(
    model: &WorldModel,
    ctrl: &Controller,
    specs: impl IntoIterator<Item = (&'a str, &'a ltlcheck::Ltl)>,
    justice: &[Justice],
    pool: &parkit::ThreadPool,
) -> (VerificationReport, CertCounters) {
    let graph = Product::build(model, ctrl).label_graph(DeadlockPolicy::Stutter);
    let specs: Vec<(&str, &ltlcheck::Ltl)> = specs.into_iter().collect();
    let results: Vec<SpecResult> = pool.map(&specs, |_, &(name, phi)| {
        let certified = ltlcheck::check_graph_fair_certified(&graph, phi, justice);
        if let Err(e) = certkit::check_certified(&graph, phi, justice, &certified) {
            panic!("model-checker evidence for `{name}` rejected: {e}");
        }
        SpecResult {
            name: name.to_owned(),
            verdict: certified.verdict(),
        }
    });
    let mut counters = CertCounters::default();
    for result in &results {
        counters.checks += 1;
        if result.verdict.holds() {
            counters.holds += 1;
        } else {
            counters.fails += 1;
        }
    }
    (VerificationReport { results }, counters)
}

/// A response with its verification outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredResponse {
    /// The decoded response text.
    pub text: String,
    /// The synthesized controller (`None` when alignment/parsing failed).
    pub controller: Option<Controller>,
    /// The per-specification report (`None` when synthesis failed).
    pub report: Option<VerificationReport>,
    /// Number of satisfied specifications (0 on synthesis failure) — the
    /// ranking key.
    pub num_satisfied: usize,
}

/// Scores a raw response text for a task: align → parse → FSA →
/// `M ⊗ C ⊨ Φᵢ` for the 15 specifications under the scenario's justice
/// assumptions.
///
/// Responses that fail to align (the paper's property-1 failure mode)
/// score 0 and therefore rank below every verifiable response.
///
/// [`preflight_response`] gates the expensive work: a step list carrying
/// lint-`Error` findings is rejected before any synthesis or model
/// checking happens.
pub fn score_response(bundle: &DomainBundle, task: &TaskSpec, text: &str) -> ScoredResponse {
    score_response_impl(bundle, task, text, None)
}

/// [`score_response`] in certified mode: every model-checking verdict's
/// evidence is validated by `certkit` before it contributes to the
/// score, and the validation counters are returned alongside.
///
/// # Panics
///
/// Panics when any verdict's certificate or counterexample is rejected
/// (see [`verify_all_fair_certified`]).
pub fn score_response_certified(
    bundle: &DomainBundle,
    task: &TaskSpec,
    text: &str,
) -> (ScoredResponse, CertCounters) {
    let mut counters = CertCounters::default();
    let scored = score_response_impl(bundle, task, text, Some(&mut counters));
    (scored, counters)
}

fn score_response_impl(
    bundle: &DomainBundle,
    task: &TaskSpec,
    text: &str,
    counters: Option<&mut CertCounters>,
) -> ScoredResponse {
    let rejected = ScoredResponse {
        text: text.to_owned(),
        controller: None,
        report: None,
        num_satisfied: 0,
    };
    if preflight_response(bundle, task, text).is_err() {
        obskit::counter_add("pipeline.responses_rejected", 1);
        return rejected;
    }
    let steps = DomainBundle::split_steps(text);
    let parsed = {
        let _stage = obskit::span("pipeline.parse");
        synthesize(
            &task.prompt,
            &steps,
            &bundle.lexicon,
            fsa_options(&bundle.driving),
        )
    };
    let ctrl = match parsed {
        Ok(c) => c,
        Err(_) => {
            obskit::counter_add("pipeline.responses_rejected", 1);
            return rejected;
        }
    };
    // The paper's SMV encodings give the vehicle an action at every step:
    // an observing controller is a stopped controller.
    let ctrl = with_default_action(&ctrl, bundle.driving.stop);
    let model = scenario_model(&bundle.driving, task.scenario);
    let justice = justice_for(&bundle.driving, task.scenario);
    let specs = driving_specs(&bundle.driving);
    let named = specs.iter().map(|s| (s.name.as_str(), &s.formula));
    let report = {
        let _stage = obskit::span("pipeline.verify");
        match counters {
            Some(counters) => {
                let (report, c) = verify_all_fair_certified(&model, &ctrl, named, &justice);
                counters.add(c);
                report
            }
            None => verify_all_fair(&model, &ctrl, named, &justice),
        }
    };
    ScoredResponse {
        text: text.to_owned(),
        num_satisfied: report.num_satisfied(),
        controller: Some(ctrl),
        report: Some(report),
    }
}

/// [`score_response`] on encoded tokens.
pub fn score_tokens(
    bundle: &DomainBundle,
    task: &TaskSpec,
    tokens: &[tinylm::Token],
) -> ScoredResponse {
    score_response(bundle, task, &bundle.decode(tokens))
}

/// [`score_response_certified`] on encoded tokens.
pub fn score_tokens_certified(
    bundle: &DomainBundle,
    task: &TaskSpec,
    tokens: &[tinylm::Token],
) -> (ScoredResponse, CertCounters) {
    score_response_certified(bundle, task, &bundle.decode(tokens))
}

/// Per-specification empirical satisfaction rates `P_Φ` from simulator
/// rollouts (paper Equation 2 / Figure 11).
///
/// Runs `runs` episodes of `steps` ticks in the task's scenario and
/// monitors each trace with the LTLf semantics.
pub fn empirical_rates(
    bundle: &DomainBundle,
    task: &TaskSpec,
    ctrl: &Controller,
    runs: usize,
    steps: usize,
    rng: &mut impl rand::Rng,
) -> Vec<(String, f64)> {
    let mut scenario = drivesim::Scenario::new(task.scenario, drivesim::ScenarioConfig::default());
    let traces = drivesim::ground_many(ctrl, &mut scenario, &bundle.driving, rng, steps, runs);
    driving_specs(&bundle.driving)
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                ltlcheck::finite::satisfaction_rate(traces.iter(), &s.formula),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{render_response, Style};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn justice_is_realizable_in_every_scenario() {
        let d = DrivingDomain::new();
        for kind in ScenarioKind::all() {
            let model = scenario_model(&d, kind);
            let justice = justice_for(&d, kind);
            let witness = model.states().any(|s| {
                justice
                    .iter()
                    .all(|j| j.holds(model.label(s), autokit::ActSet::empty()))
            });
            assert!(witness, "justice unrealizable in {kind:?}");
        }
    }

    #[test]
    fn careful_beats_hasty_beats_reckless() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(0);
        let task = &bundle.tasks[0]; // turn right at the traffic light
        let careful = score_response(
            &bundle,
            task,
            &render_response(&bundle.driving, task, Style::Careful, &mut rng),
        );
        let hasty = score_response(
            &bundle,
            task,
            &render_response(&bundle.driving, task, Style::Hasty, &mut rng),
        );
        let reckless = score_response(
            &bundle,
            task,
            &render_response(&bundle.driving, task, Style::Reckless, &mut rng),
        );
        assert!(
            careful.num_satisfied > hasty.num_satisfied,
            "careful {} vs hasty {} (careful failed: {:?})",
            careful.num_satisfied,
            hasty.num_satisfied,
            careful.report.as_ref().map(|r| r.failed())
        );
        assert!(
            hasty.num_satisfied > reckless.num_satisfied,
            "hasty {} vs reckless {}",
            hasty.num_satisfied,
            reckless.num_satisfied
        );
    }

    /// Certified scoring returns the same ranking signal as the plain
    /// path — it only adds evidence validation — and its counters account
    /// for every specification exactly once.
    #[test]
    fn certified_scoring_matches_plain_and_counts() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(5);
        let task = &bundle.tasks[0];
        for style in [Style::Careful, Style::Reckless] {
            let text = render_response(&bundle.driving, task, style, &mut rng);
            let plain = score_response(&bundle, task, &text);
            let (certified, counters) = score_response_certified(&bundle, task, &text);
            assert_eq!(plain.num_satisfied, certified.num_satisfied, "{style:?}");
            assert_eq!(counters.checks, 15, "{style:?}");
            assert_eq!(counters.holds, certified.num_satisfied, "{style:?}");
            assert_eq!(
                counters.holds + counters.fails,
                counters.checks,
                "{style:?}"
            );
        }
    }

    /// The pooled certified sweep is a pure scheduling change: report and
    /// counters match the sequential path at every thread count.
    #[test]
    fn pooled_certified_sweep_matches_sequential() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(21);
        let task = &bundle.tasks[0];
        for style in [Style::Careful, Style::Reckless] {
            let text = render_response(&bundle.driving, task, style, &mut rng);
            let steps = DomainBundle::split_steps(&text);
            let ctrl = synthesize(
                &task.prompt,
                &steps,
                &bundle.lexicon,
                fsa_options(&bundle.driving),
            )
            .expect("template responses synthesize");
            let ctrl = with_default_action(&ctrl, bundle.driving.stop);
            let model = scenario_model(&bundle.driving, task.scenario);
            let justice = justice_for(&bundle.driving, task.scenario);
            let specs = driving_specs(&bundle.driving);
            let named: Vec<(&str, &ltlcheck::Ltl)> = specs
                .iter()
                .map(|s| (s.name.as_str(), &s.formula))
                .collect();
            let (seq_report, seq_counters) =
                verify_all_fair_certified(&model, &ctrl, named.iter().copied(), &justice);
            for threads in [1, 2, 4] {
                let pool = parkit::ThreadPool::new(threads);
                let (report, counters) = verify_all_fair_certified_pooled(
                    &model,
                    &ctrl,
                    named.iter().copied(),
                    &justice,
                    &pool,
                );
                assert_eq!(report, seq_report, "{style:?} at {threads} threads");
                assert_eq!(counters, seq_counters, "{style:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn preflight_accepts_shipped_rule_book() {
        let d = DrivingDomain::new();
        assert!(preflight_rule_book(&d).is_ok());
    }

    /// The pre-flight gate consumes speclint's stable JSON schema: the
    /// diagnostics round-trip through `serde_json` with their code,
    /// severity, subject and message intact, and the gate rejects on the
    /// parsed-back form exactly as on the in-memory one.
    #[test]
    fn preflight_rejects_unparseable_response_via_json_diagnostics() {
        let bundle = DomainBundle::new();
        let task = &bundle.tasks[0];
        let text = "do a barrel roll across the intersection .";

        let errors = preflight_response(&bundle, task, text).expect_err("must reject");
        let json = serde_json::to_string(&errors).expect("diagnostics serialize");
        let parsed: Vec<speclint::Diagnostic> =
            serde_json::from_str(&json).expect("stable schema parses back");

        assert!(!parsed.is_empty());
        for diag in &parsed {
            assert_eq!(diag.code.code(), "SL201", "{diag:?}");
            assert_eq!(diag.severity, speclint::Severity::Error, "{diag:?}");
            assert!(diag.location.subject.contains(&task.prompt), "{diag:?}");
        }
        assert!(json.contains("\"severity\":\"error\""), "{json}");

        // The gate keeps the rejected response at the bottom of the
        // ranking without running synthesis or model checking.
        let scored = score_response(&bundle, task, text);
        assert_eq!(scored.num_satisfied, 0);
        assert!(scored.controller.is_none());
    }

    #[test]
    fn preflight_accepts_careful_responses() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(11);
        for task in &bundle.tasks {
            let text = render_response(&bundle.driving, task, Style::Careful, &mut rng);
            assert!(
                preflight_response(&bundle, task, &text).is_ok(),
                "careful response for `{}` rejected: `{text}`",
                task.prompt
            );
        }
    }

    #[test]
    fn unalignable_scores_zero() {
        let bundle = DomainBundle::new();
        let task = &bundle.tasks[0];
        let scored = score_response(&bundle, task, "trust your instincts and merge .");
        assert_eq!(scored.num_satisfied, 0);
        assert!(scored.controller.is_none());
        assert!(scored.report.is_none());
    }

    #[test]
    fn careful_satisfies_most_specs_on_every_task() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(7);
        for task in &bundle.tasks {
            let text = render_response(&bundle.driving, task, Style::Careful, &mut rng);
            let scored = score_response(&bundle, task, &text);
            assert!(
                scored.num_satisfied >= 12,
                "task {} (`{}`) careful controller only satisfied {}/15; failed {:?}; text `{}`",
                task.id,
                task.prompt,
                scored.num_satisfied,
                scored.report.as_ref().map(|r| r.failed()),
                text
            );
        }
    }

    #[test]
    fn empirical_rates_cover_all_specs() {
        let bundle = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(3);
        let task = &bundle.tasks[0];
        let text = render_response(&bundle.driving, task, Style::Careful, &mut rng);
        let scored = score_response(&bundle, task, &text);
        let ctrl = scored.controller.expect("careful synthesizes");
        let rates = empirical_rates(&bundle, task, &ctrl, 10, 30, &mut rng);
        assert_eq!(rates.len(), 15);
        for (name, rate) in &rates {
            assert!((0.0..=1.0).contains(rate), "{name}: {rate}");
        }
    }
}
