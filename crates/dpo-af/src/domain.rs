//! The autonomous-driving task domain: prompts, response templates of
//! graded quality, and the pretraining corpus.
//!
//! The paper starts from Llama2-7B, whose pretraining already contains
//! driving instructions of mixed quality — that mixture is exactly why
//! the pre-fine-tuning model satisfies only ~60% of the specifications.
//! We reproduce the starting point by pretraining `tinylm` on a corpus
//! rendered from the templates here, mixing careful, incomplete, hasty,
//! reckless, wrong-action and unalignable instruction styles.

use autokit::{presets::DrivingDomain, ActId, PropId};
use drivesim::ScenarioKind;
use glm2fsa::Lexicon;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tinylm::{Token, Tokenizer};

/// One control task the language model is queried about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task id — doubles as the conditional LM's prompt id.
    pub id: usize,
    /// Natural-language prompt ("Steps for …").
    pub prompt: String,
    /// The road scenario the task takes place in.
    pub scenario: ScenarioKind,
    /// The maneuver the task asks for.
    pub action: ActId,
    /// The light proposition gating the maneuver, if the scenario has one.
    pub light: Option<PropId>,
    /// Hazards that must be absent before acting.
    pub hazards: Vec<PropId>,
}

/// Instruction quality styles the corpus (and thus the pre-trained model)
/// mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Style {
    /// Observes the light, checks every hazard, then acts. Satisfies the
    /// most specifications.
    Careful,
    /// Checks only some hazards.
    Incomplete,
    /// Waits for the light but skips hazard checks entirely.
    Hasty,
    /// Acts unconditionally.
    Reckless,
    /// A careful-looking procedure for the *wrong* maneuver.
    WrongAction,
    /// Phrasing that cannot be aligned to the propositions/actions at all
    /// (synthesis fails; ranked last).
    Unalignable,
}

impl Style {
    /// All styles.
    pub fn all() -> [Style; 6] {
        [
            Style::Careful,
            Style::Incomplete,
            Style::Hasty,
            Style::Reckless,
            Style::WrongAction,
            Style::Unalignable,
        ]
    }
}

/// Everything the pipeline needs about the domain, bundled: vocabulary,
/// lexicon, task set and tokenizer.
#[derive(Debug, Clone)]
pub struct DomainBundle {
    /// The driving vocabulary and preset models.
    pub driving: DrivingDomain,
    /// The paraphrase lexicon for alignment.
    pub lexicon: Lexicon,
    /// The ten tasks.
    pub tasks: Vec<TaskSpec>,
    /// Word tokenizer covering every template expansion.
    pub tokenizer: Tokenizer,
}

/// Paraphrase surface forms used when *rendering* text (a subset of what
/// the `glm2fsa` lexicon can *parse*, so alignment always has work to do
/// but can succeed on aligned styles).
fn prop_surfaces(d: &DrivingDomain, p: PropId) -> Vec<&'static str> {
    if p == d.green_tl {
        vec!["green traffic light", "green light", "light is green"]
    } else if p == d.green_ll {
        vec![
            "green left-turn light",
            "green arrow",
            "left-turn light is green",
        ]
    } else if p == d.opposite_car {
        vec!["opposite car", "oncoming traffic", "oncoming vehicle"]
    } else if p == d.car_left {
        vec![
            "car from left",
            "car from the left",
            "car approaching from the left",
        ]
    } else if p == d.car_right {
        vec![
            "car from right",
            "car from the right",
            "traffic from your right",
        ]
    } else if p == d.ped_left {
        vec!["pedestrian at left", "pedestrian on the left"]
    } else if p == d.ped_right {
        vec![
            "pedestrian at right",
            "pedestrian on the right",
            "right side pedestrian",
        ]
    } else if p == d.ped_front {
        vec!["pedestrian in front", "pedestrian ahead", "person crossing"]
    } else if p == d.stop_sign {
        vec!["stop sign", "the stop sign"]
    } else {
        vec!["flashing left-turn light"]
    }
}

fn act_surfaces(d: &DrivingDomain, a: ActId) -> Vec<&'static str> {
    if a == d.stop {
        vec!["stop", "come to a stop", "wait"]
    } else if a == d.turn_left {
        vec!["turn left", "make a left turn"]
    } else if a == d.turn_right {
        vec!["turn right", "make a right turn"]
    } else {
        vec!["go straight", "proceed straight", "drive forward"]
    }
}

impl DomainBundle {
    /// Builds the full domain: driving vocabulary, lexicon, the ten tasks
    /// and a tokenizer that covers every renderable response.
    pub fn new() -> Self {
        let driving = DrivingDomain::new();
        let lexicon = Lexicon::driving(&driving);
        let tasks = build_tasks(&driving);

        // Tokenizer corpus: every template surface for every task/style,
        // so sampling can never produce an un-decodable token.
        let mut texts = Vec::new();
        for task in &tasks {
            for style in Style::all() {
                // Enumerate paraphrase combinations coarsely by rendering
                // with several seeds.
                for seed in 0..12u64 {
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        seed * 1009 + task.id as u64 * 13 + style as u64,
                    );
                    texts.push(render_response(&driving, task, style, &mut rng));
                }
            }
        }
        // Also include every lexicon-renderable word used by surfaces.
        let tokenizer = Tokenizer::from_corpus(texts.iter().map(String::as_str));

        DomainBundle {
            driving,
            lexicon,
            tasks,
            tokenizer,
        }
    }

    /// Renders one response for `task` in `style` and encodes it.
    pub fn sample_response_tokens(
        &self,
        task: &TaskSpec,
        style: Style,
        rng: &mut impl Rng,
    ) -> Vec<Token> {
        let text = render_response(&self.driving, task, style, rng);
        self.tokenizer.encode(&text)
    }

    /// Generates a pretraining corpus of `(task_id, tokens)` pairs with
    /// the quality mixture that yields the paper's ~60% pre-fine-tuning
    /// baseline.
    // ALLOW: tasks and surface lists are non-empty by construction.
    #[allow(clippy::expect_used)]
    pub fn pretraining_corpus(&self, size: usize, rng: &mut impl Rng) -> Vec<(usize, Vec<Token>)> {
        // Calibrated so that controllers sampled from the pre-trained
        // model satisfy ≈9 of 15 specifications — the paper's ~60%
        // pre-fine-tuning baseline.
        let styles = [
            (Style::Careful, 0.15),
            (Style::Incomplete, 0.16),
            (Style::Hasty, 0.21),
            (Style::Reckless, 0.21),
            (Style::WrongAction, 0.05),
            (Style::Unalignable, 0.22),
        ];
        (0..size)
            .map(|_| {
                let task = self.tasks.choose(rng).expect("tasks non-empty");
                let mut draw: f64 = rng.gen();
                let mut style = Style::Careful;
                for (s, w) in styles {
                    if draw < w {
                        style = s;
                        break;
                    }
                    draw -= w;
                }
                (task.id, self.sample_response_tokens(task, style, rng))
            })
            .collect()
    }

    /// Decodes tokens back to response text.
    pub fn decode(&self, tokens: &[Token]) -> String {
        self.tokenizer.decode(tokens)
    }

    /// Splits a decoded response into its step strings (steps are
    /// `;`-separated).
    pub fn split_steps(text: &str) -> Vec<String> {
        text.split(';')
            .map(|s| s.trim().trim_end_matches('.').trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect()
    }
}

impl Default for DomainBundle {
    fn default() -> Self {
        Self::new()
    }
}

fn build_tasks(d: &DrivingDomain) -> Vec<TaskSpec> {
    let task = |id: usize,
                prompt: &str,
                scenario: ScenarioKind,
                action: ActId,
                light: Option<PropId>,
                hazards: Vec<PropId>| TaskSpec {
        id,
        prompt: prompt.to_owned(),
        scenario,
        action,
        light,
        hazards,
    };
    vec![
        task(
            0,
            "turn right at the traffic light",
            ScenarioKind::TrafficLight,
            d.turn_right,
            Some(d.green_tl),
            vec![d.car_left, d.ped_right],
        ),
        task(
            1,
            "turn left at the traffic light with a left-turn signal",
            ScenarioKind::LeftTurnSignal,
            d.turn_left,
            Some(d.green_ll),
            vec![d.opposite_car],
        ),
        task(
            2,
            "go straight at the traffic light",
            ScenarioKind::TrafficLight,
            d.go_straight,
            Some(d.green_tl),
            vec![d.ped_front],
        ),
        task(
            3,
            "turn right at the stop sign",
            ScenarioKind::TwoWayStop,
            d.turn_right,
            None,
            vec![d.car_left, d.ped_front],
        ),
        task(
            4,
            "turn left at the stop sign",
            ScenarioKind::TwoWayStop,
            d.turn_left,
            None,
            vec![d.car_left, d.car_right],
        ),
        task(
            5,
            "cross the intersection with a wide median",
            ScenarioKind::WideMedian,
            d.go_straight,
            None,
            vec![d.car_left, d.car_right],
        ),
        task(
            6,
            "enter the roundabout",
            ScenarioKind::Roundabout,
            d.turn_right,
            None,
            vec![d.car_left, d.ped_left],
        ),
        task(
            7,
            "turn left at the protected intersection during rush hour",
            ScenarioKind::LeftTurnSignal,
            d.turn_left,
            Some(d.green_ll),
            vec![d.opposite_car, d.ped_front],
        ),
        task(
            8,
            "turn right onto the road with a wide median",
            ScenarioKind::WideMedian,
            d.turn_right,
            None,
            vec![d.car_left],
        ),
        task(
            9,
            "go straight at the two-way stop",
            ScenarioKind::TwoWayStop,
            d.go_straight,
            None,
            vec![d.car_left, d.car_right, d.ped_front],
        ),
    ]
}

// ALLOW: `choose` on a non-empty const slice cannot return `None`.
#[allow(clippy::expect_used)]
fn pick<'a>(options: &[&'a str], rng: &mut impl Rng) -> &'a str {
    options.choose(rng).expect("non-empty surface list")
}

/// Renders a response: step strings joined by ` ; `.
// ALLOW: `choose` on a non-empty action set cannot return `None`.
#[allow(clippy::expect_used)]
pub fn render_response(
    d: &DrivingDomain,
    task: &TaskSpec,
    style: Style,
    rng: &mut impl Rng,
) -> String {
    let action = pick(&act_surfaces(d, task.action), rng);
    let steps: Vec<String> = match style {
        Style::Careful | Style::WrongAction | Style::Incomplete => {
            let action = if style == Style::WrongAction {
                // A procedure for some other maneuver.
                let others: Vec<ActId> = [d.stop, d.turn_left, d.turn_right, d.go_straight]
                    .into_iter()
                    .filter(|&a| a != task.action)
                    .collect();
                pick(
                    &act_surfaces(d, *others.choose(rng).expect("non-empty")),
                    rng,
                )
            } else {
                action
            };
            let hazards: Vec<PropId> = if style == Style::Incomplete && task.hazards.len() > 1 {
                // Drop a random hazard check.
                let skip = rng.gen_range(0..task.hazards.len());
                task.hazards
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &h)| h)
                    .collect()
            } else {
                task.hazards.clone()
            };
            let hazard_names: Vec<String> = hazards
                .iter()
                .map(|&h| pick(&prop_surfaces(d, h), rng).to_owned())
                .collect();
            let mut steps = Vec::new();
            let mut guard_parts: Vec<String> = Vec::new();
            if let Some(light) = task.light {
                let light_name = pick(&prop_surfaces(d, light), rng);
                steps.push(format!("observe the {light_name}"));
                if !hazard_names.is_empty() {
                    steps.push(format!(
                        "if the {light_name} is on, check for the {}",
                        hazard_names.join(" and the ")
                    ));
                }
                // The final maneuver stays gated on the light — the shape
                // of the paper's post-fine-tuning controllers (Fig. 7/18).
                guard_parts.push(format!("the {light_name} is on"));
            } else if !hazard_names.is_empty() {
                steps.push(format!("check for the {}", hazard_names.join(" and the ")));
            }
            guard_parts.extend(hazard_names.iter().map(|h| format!("no {h}")));
            if guard_parts.is_empty() {
                steps.push(action.to_owned());
            } else {
                steps.push(format!("if {}, {action}", guard_parts.join(" and ")));
            }
            steps
        }
        Style::Hasty => {
            let mut steps = Vec::new();
            if let Some(light) = task.light {
                let light_name = pick(&prop_surfaces(d, light), rng);
                steps.push(format!("observe the {light_name}"));
                steps.push(format!("if the {light_name} is on, {action}"));
            } else {
                steps.push(format!("slow down and then {action}"));
            }
            steps
        }
        Style::Reckless => {
            vec![pick(&[action, "speed up and go straight"], rng).to_owned()]
        }
        Style::Unalignable => {
            vec![pick(
                &[
                    "use your best judgment",
                    "proceed when it feels safe",
                    "do what the other drivers do",
                    "trust your instincts and merge",
                ],
                rng,
            )
            .to_owned()]
        }
    };
    format!("{} .", steps.join(" ; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use glm2fsa::{synthesize, FsaOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bundle_builds_with_ten_tasks() {
        let b = DomainBundle::new();
        assert_eq!(b.tasks.len(), 10);
        assert!(b.tokenizer.vocab_size() > 40);
        // Task ids are their indices.
        for (i, t) in b.tasks.iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn careful_responses_synthesize() {
        let b = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(0);
        for task in &b.tasks {
            for _ in 0..4 {
                let text = render_response(&b.driving, task, Style::Careful, &mut rng);
                let steps = DomainBundle::split_steps(&text);
                let ctrl = synthesize(&task.prompt, &steps, &b.lexicon, FsaOptions::default());
                assert!(ctrl.is_ok(), "task {} text `{}`: {:?}", task.id, text, ctrl);
            }
        }
    }

    #[test]
    fn unalignable_responses_fail_synthesis() {
        let b = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(1);
        for task in &b.tasks {
            let text = render_response(&b.driving, task, Style::Unalignable, &mut rng);
            let steps = DomainBundle::split_steps(&text);
            assert!(
                synthesize(&task.prompt, &steps, &b.lexicon, FsaOptions::default()).is_err(),
                "`{text}` should not align"
            );
        }
    }

    #[test]
    fn tokenizer_roundtrips_rendered_responses() {
        let b = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(2);
        for task in &b.tasks {
            for style in Style::all() {
                let text = render_response(&b.driving, task, style, &mut rng);
                let tokens = b.tokenizer.encode(&text);
                let decoded = b.decode(&tokens);
                assert!(
                    !decoded.contains("<unk>"),
                    "style {style:?} produced OOV words: `{text}` → `{decoded}`"
                );
            }
        }
    }

    #[test]
    fn corpus_mixture_contains_multiple_styles() {
        let b = DomainBundle::new();
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = b.pretraining_corpus(300, &mut rng);
        assert_eq!(corpus.len(), 300);
        // Distinct lengths indicate style diversity.
        let mut lengths: Vec<usize> = corpus.iter().map(|(_, t)| t.len()).collect();
        lengths.sort_unstable();
        lengths.dedup();
        assert!(lengths.len() > 5);
        // Every task appears.
        let mut tasks: Vec<usize> = corpus.iter().map(|&(t, _)| t).collect();
        tasks.sort_unstable();
        tasks.dedup();
        assert_eq!(tasks.len(), 10);
    }

    #[test]
    fn split_steps_strips_numbering_and_period() {
        let steps = DomainBundle::split_steps(
            "observe the green light ; if no car from left, turn right .",
        );
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0], "observe the green light");
        assert_eq!(steps[1], "if no car from left, turn right");
    }
}
