//! # dpo-af — Direct Preference Optimization via Automated Feedback
//!
//! The end-to-end pipeline of *"Fine-Tuning Language Models Using Formal
//! Methods Feedback"* (MLSys 2024), assembled from the workspace's
//! substrate crates:
//!
//! ```text
//!            ┌──────────────┐   sample m responses    ┌──────────────┐
//!  prompts ─►│   tinylm      │ ──────────────────────► │   glm2fsa    │
//!            │ (cond. LM)    │                         │ align+parse  │
//!            └──────▲───────┘                          └──────┬───────┘
//!                   │ DPO (LoRA)                              │ FSA
//!            ┌──────┴───────┐   rank by #specs        ┌──────▼───────┐
//!            │     dpo       │ ◄───────────────────── │   ltlcheck   │
//!            │ (preferences) │   satisfied            │  M ⊗ C ⊨ Φᵢ  │
//!            └──────────────┘                         └──────────────┘
//! ```
//!
//! * [`domain`] — the autonomous-driving task set, response templates and
//!   pretraining corpus (the stand-in for Llama2's prior knowledge).
//! * [`feedback`] — automated feedback: formal verification of a response
//!   against the 15 specifications in its task's scenario model (with the
//!   scenario's justice assumptions), and empirical evaluation via
//!   `drivesim` rollouts.
//! * [`pipeline`] — the DPO-AF loop: sample → verify → rank → fine-tune,
//!   with periodic checkpoints. Formal scoring fans out across a `parkit`
//!   work-stealing pool and memoizes verdicts in a [`cache::VerifyCache`];
//!   both are pure performance features — artifacts are byte-identical at
//!   any thread count, cache on or off.
//! * [`experiments`] — one module per paper artifact (Figures 7, 8, 9,
//!   11, 12 and the Section 5.1 demonstrations), each returning a
//!   serializable result consumed by the `bench` crate's binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod domain;
pub mod experiments;
pub mod feedback;
pub mod pipeline;

pub use cache::{CachedScore, VerifyCache};
pub use domain::{DomainBundle, Style, TaskSpec};
pub use feedback::{score_response, score_tokens, ScoredResponse};
pub use pipeline::{DpoAf, FeedbackSource, PipelineConfig, RunArtifacts};
