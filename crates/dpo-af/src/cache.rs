//! Verification memoization: duplicate responses skip model checking.
//!
//! Sampled step lists repeat heavily — a handful of high-probability
//! phrasings dominate the policy's output, and the same response shows
//! up again and again across rounds, iterations and checkpoint
//! evaluations. Formal scoring is a pure function of the decoded
//! response text and the scenario it is checked in (the task prompt only
//! labels the controller and diagnostics; it never reaches the product
//! automaton), so the pipeline caches verdicts keyed by
//! `(scenario kind, response text)`.
//!
//! The cache is sharded: each key hashes to one of [`SHARDS`] independent
//! `Mutex<HashMap>` shards, so the parallel scoring fan-out rarely
//! contends on a single lock. Hit/miss tallies are kept in local atomics
//! (readable without the global recorder) and mirrored to the obskit
//! counters `verify.cache_hits` / `verify.cache_misses`; the number of
//! distinct memoized keys is mirrored to the `verify.cache_entries`
//! gauge — the observability hook for the bounded-LRU work, which needs
//! the resident-size trend before picking a bound.
//!
//! **Invalidation:** there is none, by design. A cache lives inside one
//! [`crate::pipeline::DpoAf`], whose rule book, lexicon and scenario
//! models are fixed for the pipeline's lifetime; a cached verdict can
//! therefore never go stale. Changing the domain means building a new
//! pipeline — which starts with an empty cache.

use crate::feedback::CertCounters;
use drivesim::ScenarioKind;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards. Power of two, comfortably above any
/// realistic pool width so two workers rarely map to the same lock.
const SHARDS: usize = 16;

/// One memoized verdict: the ranking score, plus the certificate
/// counters the certified path accumulated when the verdict was first
/// computed (all zeros in plain mode). Re-adding the counters on a hit
/// keeps a certified run's totals identical with and without the cache:
/// every verdict that ranks a response is accounted once per use, and
/// was independently validated when first produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedScore {
    /// Number of satisfied specifications — the ranking key.
    pub num_satisfied: usize,
    /// Certificate-validation counters from the original computation.
    pub cert: CertCounters,
}

/// A sharded `(scenario, text) → verdict` memo table.
#[derive(Debug, Default)]
pub struct VerifyCache {
    shards: [Mutex<HashMap<(ScenarioKind, String), CachedScore>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

fn lock_shard(
    shard: &Mutex<HashMap<(ScenarioKind, String), CachedScore>>,
) -> std::sync::MutexGuard<'_, HashMap<(ScenarioKind, String), CachedScore>> {
    match shard.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> VerifyCache {
        VerifyCache::default()
    }

    fn shard(
        &self,
        scenario: ScenarioKind,
        text: &str,
    ) -> &Mutex<HashMap<(ScenarioKind, String), CachedScore>> {
        let mut hasher = DefaultHasher::new();
        scenario.hash(&mut hasher);
        text.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized verdict, updating the hit/miss counters.
    pub fn lookup(&self, scenario: ScenarioKind, text: &str) -> Option<CachedScore> {
        let found = lock_shard(self.shard(scenario, text))
            .get(&(scenario, text.to_owned()))
            .copied();
        match found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obskit::counter_add("verify.cache_hits", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obskit::counter_add("verify.cache_misses", 1);
            }
        }
        found
    }

    /// Memoizes a freshly computed verdict. Verdicts are deterministic,
    /// so a racing double-insert of the same key is idempotent. Fresh
    /// keys update the `verify.cache_entries` gauge.
    pub fn insert(&self, scenario: ScenarioKind, text: &str, score: CachedScore) {
        let fresh = lock_shard(self.shard(scenario, text))
            .insert((scenario, text.to_owned()), score)
            .is_none();
        if fresh {
            let entries = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
            obskit::gauge_set("verify.cache_entries", entries as f64);
        }
    }

    /// `(hits, misses)` so far — independent of the global recorder.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct memoized `(scenario, text)` keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_roundtrip_and_stats() {
        let cache = VerifyCache::new();
        let score = CachedScore {
            num_satisfied: 12,
            cert: CertCounters::default(),
        };
        assert_eq!(cache.lookup(ScenarioKind::TrafficLight, "stop ."), None);
        cache.insert(ScenarioKind::TrafficLight, "stop .", score);
        assert_eq!(
            cache.lookup(ScenarioKind::TrafficLight, "stop ."),
            Some(score)
        );
        // Same text, different scenario: a distinct key.
        assert_eq!(cache.lookup(ScenarioKind::Roundabout, "stop ."), None);
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        // Re-inserting an existing key does not inflate the entry count.
        cache.insert(ScenarioKind::TrafficLight, "stop .", score);
        assert_eq!(cache.entries.load(Ordering::Relaxed), 1);
        cache.insert(ScenarioKind::Roundabout, "stop .", score);
        assert_eq!(cache.entries.load(Ordering::Relaxed), 2);
        assert_eq!(cache.len() as u64, cache.entries.load(Ordering::Relaxed));
    }

    /// Keys spread over multiple shards, and concurrent mixed
    /// lookup/insert traffic stays consistent.
    #[test]
    fn sharded_access_under_contention() {
        let cache = VerifyCache::new();
        let texts: Vec<String> = (0..200).map(|i| format!("step list {i} .")).collect();
        std::thread::scope(|s| {
            let cache = &cache;
            for chunk in texts.chunks(50) {
                s.spawn(move || {
                    for t in chunk {
                        let score = CachedScore {
                            num_satisfied: t.len() % 16,
                            cert: CertCounters::default(),
                        };
                        cache.insert(ScenarioKind::WideMedian, t, score);
                        assert_eq!(
                            cache.lookup(ScenarioKind::WideMedian, t),
                            Some(score),
                            "{t}"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 200);
        assert_eq!(misses, 0);
    }
}
