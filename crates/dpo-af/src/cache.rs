//! Verification memoization: duplicate responses skip model checking.
//!
//! Sampled step lists repeat heavily — a handful of high-probability
//! phrasings dominate the policy's output, and the same response shows
//! up again and again across rounds, iterations and checkpoint
//! evaluations. Formal scoring is a pure function of the decoded
//! response text and the scenario it is checked in (the task prompt only
//! labels the controller and diagnostics; it never reaches the product
//! automaton), so the pipeline caches verdicts keyed by
//! `(scenario kind, response text)`.
//!
//! The concurrency structure lives in [`parkit::ShardedMap`] — a
//! sharded, bounded, insertion-ordered map whose interleaving behavior
//! is model-checked by conckit alongside the pool that drives traffic
//! into it. This module is the domain wrapper: key shape, hit/miss
//! bookkeeping, and the obskit mirror (`verify.cache_hits` /
//! `verify.cache_misses` counters, `verify.cache_evictions` counter,
//! `verify.cache_entries` gauge).
//!
//! **Bounded.** The cache holds at most `capacity` verdicts (split
//! across [`SHARDS`] shards); inserting past the bound evicts the
//! oldest entry in the full shard, FIFO. An evicted verdict is not an
//! error — the next lookup misses and recomputes, and because verdicts
//! are pure, a bounded cache produces byte-identical pipeline artifacts
//! to an unbounded one (the pipeline tests assert this at a
//! pathologically tiny capacity).
//!
//! **Invalidation:** there is none, by design. A cache lives inside one
//! [`crate::pipeline::DpoAf`], whose rule book, lexicon and scenario
//! models are fixed for the pipeline's lifetime; a cached verdict can
//! therefore never go stale. Changing the domain means building a new
//! pipeline — which starts with an empty cache.

use crate::feedback::CertCounters;
use drivesim::ScenarioKind;
use parkit::ShardedMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independent shards. Power of two, comfortably above any
/// realistic pool width so two workers rarely map to the same lock.
const SHARDS: usize = 16;

/// One memoized verdict: the ranking score, plus the certificate
/// counters the certified path accumulated when the verdict was first
/// computed (all zeros in plain mode). Re-adding the counters on a hit
/// keeps a certified run's totals identical with and without the cache:
/// every verdict that ranks a response is accounted once per use, and
/// was independently validated when first produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedScore {
    /// Number of satisfied specifications — the ranking key.
    pub num_satisfied: usize,
    /// Certificate-validation counters from the original computation.
    pub cert: CertCounters,
}

/// A sharded, bounded `(scenario, text) → verdict` memo table.
#[derive(Debug)]
pub struct VerifyCache {
    map: ShardedMap<(ScenarioKind, String), CachedScore>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fresh keys ever inserted (monotone; live entries = fresh − evicted).
    fresh: AtomicU64,
    evicted: AtomicU64,
}

impl VerifyCache {
    /// An empty cache holding at most `capacity` verdicts (`None` =
    /// unbounded; see the module docs for the per-shard split).
    pub fn new(capacity: Option<usize>) -> VerifyCache {
        VerifyCache {
            map: ShardedMap::new(SHARDS, capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Looks up a memoized verdict, updating the hit/miss counters.
    pub fn lookup(&self, scenario: ScenarioKind, text: &str) -> Option<CachedScore> {
        let found = self.map.get(&(scenario, text.to_owned()));
        match found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obskit::counter_add("verify.cache_hits", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obskit::counter_add("verify.cache_misses", 1);
            }
        }
        found
    }

    /// Memoizes a freshly computed verdict. Verdicts are deterministic,
    /// so a racing double-insert of the same key is idempotent. Fresh
    /// keys update the `verify.cache_entries` gauge; inserts that push a
    /// shard past its bound evict its oldest entry and bump the
    /// `verify.cache_evictions` counter.
    pub fn insert(&self, scenario: ScenarioKind, text: &str, score: CachedScore) {
        let outcome = self.map.insert((scenario, text.to_owned()), score);
        if outcome.evicted {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            obskit::counter_add("verify.cache_evictions", 1);
        }
        if outcome.fresh {
            let fresh = self.fresh.fetch_add(1, Ordering::Relaxed) + 1;
            let live = fresh.saturating_sub(self.evicted.load(Ordering::Relaxed));
            obskit::gauge_set("verify.cache_entries", live as f64);
        }
    }

    /// `(hits, misses)` so far — independent of the global recorder.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries displaced by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Number of distinct memoized `(scenario, text)` keys currently
    /// resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is currently memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_roundtrip_and_stats() {
        let cache = VerifyCache::new(None);
        let score = CachedScore {
            num_satisfied: 12,
            cert: CertCounters::default(),
        };
        assert_eq!(cache.lookup(ScenarioKind::TrafficLight, "stop ."), None);
        cache.insert(ScenarioKind::TrafficLight, "stop .", score);
        assert_eq!(
            cache.lookup(ScenarioKind::TrafficLight, "stop ."),
            Some(score)
        );
        // Same text, different scenario: a distinct key.
        assert_eq!(cache.lookup(ScenarioKind::Roundabout, "stop ."), None);
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        // Re-inserting an existing key does not inflate the entry count.
        cache.insert(ScenarioKind::TrafficLight, "stop .", score);
        assert_eq!(cache.len(), 1);
        cache.insert(ScenarioKind::Roundabout, "stop .", score);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
    }

    /// Keys spread over multiple shards, and concurrent mixed
    /// lookup/insert traffic stays consistent.
    #[test]
    fn sharded_access_under_contention() {
        let cache = VerifyCache::new(None);
        let texts: Vec<String> = (0..200).map(|i| format!("step list {i} .")).collect();
        std::thread::scope(|s| {
            let cache = &cache;
            for chunk in texts.chunks(50) {
                s.spawn(move || {
                    for t in chunk {
                        let score = CachedScore {
                            num_satisfied: t.len() % 16,
                            cert: CertCounters::default(),
                        };
                        cache.insert(ScenarioKind::WideMedian, t, score);
                        assert_eq!(
                            cache.lookup(ScenarioKind::WideMedian, t),
                            Some(score),
                            "{t}"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 200);
        assert_eq!(misses, 0);
        assert_eq!(cache.evictions(), 0);
    }

    /// A bounded cache stays within its (rounded-up, per-shard) budget,
    /// counts its evictions, and keeps serving correct verdicts — an
    /// evicted key just misses and can be re-inserted.
    #[test]
    fn tiny_capacity_evicts_fifo_and_keeps_serving() {
        let cache = VerifyCache::new(Some(SHARDS)); // one entry per shard
        let score_of = |n: usize| CachedScore {
            num_satisfied: n,
            cert: CertCounters::default(),
        };
        let texts: Vec<String> = (0..100).map(|i| format!("plan {i} .")).collect();
        for (i, t) in texts.iter().enumerate() {
            cache.insert(ScenarioKind::TrafficLight, t, score_of(i % 16));
        }
        assert!(cache.len() <= SHARDS, "resident {}", cache.len());
        assert_eq!(cache.evictions(), 100 - cache.len() as u64);
        // Every resident verdict is intact.
        let mut resident = 0;
        for (i, t) in texts.iter().enumerate() {
            if let Some(v) = cache.lookup(ScenarioKind::TrafficLight, t) {
                assert_eq!(v, score_of(i % 16), "{t}");
                resident += 1;
            }
        }
        assert_eq!(resident, cache.len());
        // An evicted key can come back; the map never wedges.
        cache.insert(ScenarioKind::TrafficLight, &texts[0], score_of(0));
        assert_eq!(
            cache.lookup(ScenarioKind::TrafficLight, &texts[0]),
            Some(score_of(0))
        );
    }
}
