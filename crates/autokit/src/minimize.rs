//! Controller minimization by bisimulation quotient.
//!
//! GLM2FSA constructions produce one state per instruction step, which is
//! often redundant — consecutive observation steps with identical
//! behaviour, or duplicated wait states. The bisimulation quotient merges
//! states with identical stepwise behaviour. Bisimilarity implies trace
//! equivalence, so every LTL verdict over the product automaton is
//! preserved (the test suite checks this against the verification stack).
//!
//! The partition-refinement works on signatures: two states are separated
//! as soon as they differ in their set of `(guard, action, target block)`
//! transition triples. Guards are compared syntactically, which is sound
//! (states merged by the quotient are genuinely bisimilar) though not
//! complete (semantically equal but syntactically different guards can
//! keep states apart).

use crate::{Controller, ControllerBuilder};
use std::collections::HashMap;

/// One transition triple in a refinement signature:
/// `(guard.pos, guard.neg, action, target block)` as raw bits.
type SigTriple = (u32, u32, u32, u32);

impl Controller {
    /// Returns the bisimulation quotient of this controller: an
    /// equivalent controller with bisimilar states merged.
    ///
    /// The result has at most as many states as the original and exactly
    /// the same behaviours; verification verdicts are unchanged.
    ///
    /// # Example
    ///
    /// ```
    /// use autokit::{ActSet, ControllerBuilder, Guard};
    ///
    /// // Two chained no-op states behave identically.
    /// let ctrl = ControllerBuilder::new("redundant", 3)
    ///     .initial(0)
    ///     .transition(0, Guard::always(), ActSet::empty(), 1)
    ///     .transition(1, Guard::always(), ActSet::empty(), 2)
    ///     .transition(2, Guard::always(), ActSet::empty(), 2)
    ///     .build()?;
    /// let min = ctrl.bisimulation_quotient();
    /// assert!(min.num_states() < ctrl.num_states());
    /// # Ok::<(), autokit::AutokitError>(())
    /// ```
    // ALLOW: the rebuild maps valid indices through a total `block` function, so
    // the final `build` cannot fail; a panic here is a bug in this method.
    #[allow(clippy::expect_used)]
    pub fn bisimulation_quotient(&self) -> Controller {
        let n = self.num_states();
        if n == 0 {
            return self.clone();
        }
        // Start with one block; refine until stable.
        let mut block = vec![0u32; n];
        let mut num_blocks = 1u32;
        loop {
            // Signature: sorted, deduplicated transition triples with
            // target blocks.
            let mut signatures: Vec<Vec<SigTriple>> = (0..n)
                .map(|q| {
                    let mut sig: Vec<SigTriple> = self
                        .outgoing(q)
                        .map(|t| {
                            (
                                t.guard.pos.bits(),
                                t.guard.neg.bits(),
                                t.action.bits(),
                                block[t.to],
                            )
                        })
                        .collect();
                    sig.sort_unstable();
                    sig.dedup();
                    sig
                })
                .collect();
            let mut index: HashMap<(u32, Vec<SigTriple>), u32> = HashMap::new();
            let mut next_block = vec![0u32; n];
            let mut next_count = 0u32;
            for q in 0..n {
                let key = (block[q], std::mem::take(&mut signatures[q]));
                let b = *index.entry(key).or_insert_with(|| {
                    let b = next_count;
                    next_count += 1;
                    b
                });
                next_block[q] = b;
            }
            if next_count == num_blocks {
                break;
            }
            block = next_block;
            num_blocks = next_count;
        }

        // Rebuild over blocks.
        let mut builder = ControllerBuilder::new(self.name(), num_blocks as usize)
            .initial(block[self.initial()] as usize);
        let mut seen: std::collections::HashSet<(u32, u32, u32, u32, u32)> =
            std::collections::HashSet::new();
        for t in self.transitions() {
            let key = (
                block[t.from],
                t.guard.pos.bits(),
                t.guard.neg.bits(),
                t.action.bits(),
                block[t.to],
            );
            if seen.insert(key) {
                builder = builder.transition(
                    block[t.from] as usize,
                    t.guard,
                    t.action,
                    block[t.to] as usize,
                );
            }
        }
        builder.build().expect("quotient preserves well-formedness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActSet, Guard, PropId, PropSet, WorldModel};

    fn pid(i: u8) -> PropId {
        crate::vocab::PropId(i)
    }

    #[test]
    fn distinct_behaviours_are_not_merged() {
        let p = pid(0);
        let ctrl = ControllerBuilder::new("distinct", 2)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::from_bits(1), 1)
            .transition(1, Guard::always().forbids(p), ActSet::from_bits(2), 0)
            .build()
            .unwrap();
        let min = ctrl.bisimulation_quotient();
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn chained_noops_collapse() {
        let ctrl = ControllerBuilder::new("noops", 4)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 1)
            .transition(1, Guard::always(), ActSet::empty(), 2)
            .transition(2, Guard::always(), ActSet::empty(), 3)
            .transition(3, Guard::always(), ActSet::empty(), 3)
            .build()
            .unwrap();
        let min = ctrl.bisimulation_quotient();
        assert_eq!(min.num_states(), 1);
        assert_eq!(min.transitions().len(), 1);
    }

    #[test]
    fn duplicate_branches_merge() {
        // States 1 and 2 have identical outgoing behaviour.
        let p = pid(0);
        let ctrl = ControllerBuilder::new("dup", 3)
            .initial(0)
            .transition(0, Guard::always().requires(p), ActSet::empty(), 1)
            .transition(0, Guard::always().forbids(p), ActSet::empty(), 2)
            .transition(1, Guard::always(), ActSet::from_bits(1), 0)
            .transition(2, Guard::always(), ActSet::from_bits(1), 0)
            .build()
            .unwrap();
        let min = ctrl.bisimulation_quotient();
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn quotient_preserves_product_language() {
        // Build a model, a redundant controller, and compare the label
        // graphs' reachable label sets (a cheap language-invariance
        // proxy; full verdict preservation is covered in ltlcheck's
        // integration tests).
        let p = pid(0);
        let mut model = WorldModel::new("m");
        let a = model.add_state(PropSet::singleton(p));
        let b = model.add_state(PropSet::empty());
        model.add_transition(a, b);
        model.add_transition(b, a);
        model.add_transition(a, a);

        let ctrl = ControllerBuilder::new("redundant", 3)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 1)
            .transition(1, Guard::always(), ActSet::empty(), 2)
            .transition(2, Guard::always().requires(p), ActSet::from_bits(1), 0)
            .transition(2, Guard::always().forbids(p), ActSet::empty(), 2)
            .build()
            .unwrap();
        let min = ctrl.bisimulation_quotient();
        assert!(min.num_states() <= ctrl.num_states());

        let labels = |c: &Controller| -> std::collections::BTreeSet<(u32, u32)> {
            let product = crate::Product::build(&model, c);
            product
                .edges()
                .iter()
                .map(|e| (e.props.bits(), e.acts.bits()))
                .collect()
        };
        assert_eq!(labels(&ctrl), labels(&min));
    }

    #[test]
    fn initial_state_tracked_through_quotient() {
        let ctrl = ControllerBuilder::new("init", 2)
            .initial(1)
            .transition(1, Guard::always(), ActSet::from_bits(1), 0)
            .transition(0, Guard::always(), ActSet::from_bits(1), 1)
            .build()
            .unwrap();
        let min = ctrl.bisimulation_quotient();
        // Both states have the same behaviour: a single merged state.
        assert_eq!(min.num_states(), 1);
        assert_eq!(min.initial(), 0);
    }
}
