use crate::vocab::{ActId, PropId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not, Sub};

macro_rules! bitset_type {
    ($(#[$meta:meta])* $name:ident, $id:ty, $ctor:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// The empty set.
            pub const fn empty() -> Self {
                Self(0)
            }

            /// The set containing exactly `id`.
            pub fn singleton(id: $id) -> Self {
                Self(1 << id.index())
            }

            /// Builds a set from raw bits. Bits above the vocabulary size are
            /// meaningless but harmless; they never match any id.
            pub const fn from_bits(bits: u32) -> Self {
                Self(bits)
            }

            /// Raw bit representation.
            pub const fn bits(self) -> u32 {
                self.0
            }

            /// Returns this set with `id` added (builder style).
            #[must_use]
            pub fn with(self, id: $id) -> Self {
                Self(self.0 | (1 << id.index()))
            }

            /// Returns this set with `id` removed (builder style).
            #[must_use]
            pub fn without(self, id: $id) -> Self {
                Self(self.0 & !(1 << id.index()))
            }

            /// Adds `id` in place.
            pub fn insert(&mut self, id: $id) {
                self.0 |= 1 << id.index();
            }

            /// Removes `id` in place.
            pub fn remove(&mut self, id: $id) {
                self.0 &= !(1 << id.index());
            }

            /// Membership test.
            pub fn contains(self, id: $id) -> bool {
                self.0 & (1 << id.index()) != 0
            }

            /// `true` iff every element of `other` is in `self`.
            pub fn is_superset(self, other: Self) -> bool {
                self.0 & other.0 == other.0
            }

            /// `true` iff the two sets share no element.
            pub fn is_disjoint(self, other: Self) -> bool {
                self.0 & other.0 == 0
            }

            /// `true` iff the set is empty.
            pub fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// Number of elements.
            pub fn len(self) -> usize {
                self.0.count_ones() as usize
            }

            /// Iterates over the ids contained in the set, ascending.
            pub fn iter(self) -> impl Iterator<Item = $id> {
                (0..32u8)
                    .filter(move |i| self.0 & (1 << i) != 0)
                    .map($ctor)
            }
        }

        impl BitOr for $name {
            type Output = Self;
            fn bitor(self, rhs: Self) -> Self {
                Self(self.0 | rhs.0)
            }
        }

        impl BitAnd for $name {
            type Output = Self;
            fn bitand(self, rhs: Self) -> Self {
                Self(self.0 & rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 & !rhs.0)
            }
        }

        impl Not for $name {
            type Output = Self;
            fn not(self) -> Self {
                Self(!self.0)
            }
        }

        impl FromIterator<$id> for $name {
            fn from_iter<I: IntoIterator<Item = $id>>(iter: I) -> Self {
                let mut set = Self::empty();
                for id in iter {
                    set.insert(id);
                }
                set
            }
        }

        impl Extend<$id> for $name {
            fn extend<I: IntoIterator<Item = $id>>(&mut self, iter: I) {
                for id in iter {
                    self.insert(id);
                }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#b})", stringify!($name), self.0)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

bitset_type!(
    /// A symbol `σ ∈ 2^P`: the set of atomic propositions currently true.
    ///
    /// `PropSet` is the alphabet element of both world models (state labels)
    /// and controllers (transition guards are evaluated against it).
    ///
    /// # Example
    ///
    /// ```
    /// use autokit::{Vocab, PropSet};
    /// let mut v = Vocab::new();
    /// let green = v.add_prop("green traffic light")?;
    /// let ped = v.add_prop("pedestrian in front")?;
    /// let sigma = PropSet::empty().with(green);
    /// assert!(sigma.contains(green));
    /// assert!(!sigma.contains(ped));
    /// # Ok::<(), autokit::AutokitError>(())
    /// ```
    PropSet,
    PropId,
    PropId
);

bitset_type!(
    /// An action symbol `a ∈ 2^{P_A}`: the set of actions the controller
    /// emits in one step. The empty set is the paper's "no operation"
    /// symbol `ε`.
    ///
    /// # Example
    ///
    /// ```
    /// use autokit::{Vocab, ActSet};
    /// let mut v = Vocab::new();
    /// let stop = v.add_act("stop")?;
    /// assert!(ActSet::empty().is_empty()); // ε
    /// assert!(ActSet::singleton(stop).contains(stop));
    /// # Ok::<(), autokit::AutokitError>(())
    /// ```
    ActSet,
    ActId,
    ActId
);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pid(i: u8) -> PropId {
        PropId(i)
    }

    #[test]
    fn basic_set_ops() {
        let s = PropSet::empty().with(pid(0)).with(pid(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(pid(0)));
        assert!(s.contains(pid(3)));
        assert!(!s.contains(pid(1)));
        assert!(!s.is_empty());
        assert!(s.without(pid(0)).without(pid(3)).is_empty());
    }

    #[test]
    fn subset_and_disjoint() {
        let a = PropSet::empty().with(pid(1)).with(pid(2));
        let b = PropSet::empty().with(pid(1));
        assert!(a.is_superset(b));
        assert!(!b.is_superset(a));
        assert!(b.is_disjoint(PropSet::singleton(pid(5))));
        assert!(!b.is_disjoint(a));
    }

    #[test]
    fn iterator_roundtrip() {
        let s = PropSet::empty().with(pid(0)).with(pid(7)).with(pid(31));
        let collected: PropSet = s.iter().collect();
        assert_eq!(collected, s);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn boolean_algebra() {
        let a = PropSet::from_bits(0b1010);
        let b = PropSet::from_bits(0b0110);
        assert_eq!((a | b).bits(), 0b1110);
        assert_eq!((a & b).bits(), 0b0010);
        assert_eq!((a - b).bits(), 0b1000);
    }

    proptest! {
        #[test]
        fn union_is_superset(a in any::<u32>(), b in any::<u32>()) {
            let (a, b) = (PropSet::from_bits(a), PropSet::from_bits(b));
            prop_assert!((a | b).is_superset(a));
            prop_assert!((a | b).is_superset(b));
        }

        #[test]
        fn intersection_is_subset(a in any::<u32>(), b in any::<u32>()) {
            let (a, b) = (PropSet::from_bits(a), PropSet::from_bits(b));
            prop_assert!(a.is_superset(a & b));
            prop_assert!(b.is_superset(a & b));
        }

        #[test]
        fn difference_disjoint_from_subtrahend(a in any::<u32>(), b in any::<u32>()) {
            let (a, b) = (PropSet::from_bits(a), PropSet::from_bits(b));
            prop_assert!((a - b).is_disjoint(b));
        }

        #[test]
        fn insert_remove_inverse(bits in any::<u32>(), i in 0u8..32) {
            let mut s = ActSet::from_bits(bits);
            let id = ActId(i);
            s.insert(id);
            prop_assert!(s.contains(id));
            s.remove(id);
            prop_assert!(!s.contains(id));
        }

        #[test]
        fn len_matches_iter(bits in any::<u32>()) {
            let s = PropSet::from_bits(bits);
            prop_assert_eq!(s.len(), s.iter().count());
        }
    }
}
