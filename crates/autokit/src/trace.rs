use crate::{ActSet, PropSet, Vocab};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of an execution: the observed symbol and the emitted action.
///
/// A step is an element of `2^P × 2^{P_A}` — the alphabet of the grounding
/// function `G(C, S)` in the paper's Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Step {
    /// Environment observation `σ ∈ 2^P`.
    pub props: PropSet,
    /// Controller action `a ∈ 2^{P_A}` (empty = `ε`).
    pub acts: ActSet,
}

impl Step {
    /// Creates a step.
    pub fn new(props: PropSet, acts: ActSet) -> Self {
        Step { props, acts }
    }
}

/// A finite execution trace `(2^P × 2^{P_A})^N`.
///
/// Traces are produced by the `drivesim` grounding function and consumed by
/// the finite-trace (LTLf) monitor in `ltlcheck` to compute the empirical
/// satisfaction rates `P_Φ` of the paper's Section 4.2.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    steps: Vec<Step>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// The steps in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps `N`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over steps.
    pub fn iter(&self) -> std::slice::Iter<'_, Step> {
        self.steps.iter()
    }

    /// Renders the trace with vocabulary names, one step per line.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> TraceDisplay<'a> {
        TraceDisplay { trace: self, vocab }
    }
}

impl FromIterator<Step> for Trace {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        Trace {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<Step> for Trace {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Step;
    type IntoIter = std::slice::Iter<'a, Step>;
    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

/// Helper returned by [`Trace::display`].
#[derive(Debug)]
pub struct TraceDisplay<'a> {
    trace: &'a Trace,
    vocab: &'a Vocab,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.trace.steps.iter().enumerate() {
            writeln!(
                f,
                "{i:4}: obs = {{{}}}, act = {{{}}}",
                self.vocab.display_props(step.props),
                self.vocab.display_acts(step.acts)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Step::new(PropSet::from_bits(1), ActSet::empty()));
        t.push(Step::new(PropSet::empty(), ActSet::from_bits(2)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.steps()[1].acts.bits(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..3)
            .map(|i| Step::new(PropSet::from_bits(1 << i), ActSet::empty()))
            .collect();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn display_uses_vocab_names() {
        let mut v = Vocab::new();
        let g = v.add_prop("green").unwrap();
        let stop = v.add_act("stop").unwrap();
        let mut t = Trace::new();
        t.push(Step::new(PropSet::singleton(g), ActSet::singleton(stop)));
        let rendered = t.display(&v).to_string();
        assert!(rendered.contains("green"));
        assert!(rendered.contains("stop"));
    }
}
