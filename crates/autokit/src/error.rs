use std::fmt;

/// Errors produced by automaton construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutokitError {
    /// A proposition or action name was registered twice.
    DuplicateName(String),
    /// A name was looked up that is not in the vocabulary.
    UnknownName(String),
    /// The vocabulary cannot hold more propositions/actions (bitset width).
    VocabFull {
        /// Which vocabulary side overflowed: `"propositions"` or `"actions"`.
        kind: &'static str,
        /// The maximum number of entries supported.
        max: usize,
    },
    /// A state index was out of range for the automaton it was used with.
    InvalidState(usize),
    /// An automaton was built without any initial state.
    NoInitialState,
    /// Two components with different vocabularies were combined.
    VocabMismatch,
    /// A name contained characters outside `[a-z0-9_ -]`.
    InvalidName(String),
}

impl fmt::Display for AutokitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutokitError::DuplicateName(name) => {
                write!(f, "name already registered: `{name}`")
            }
            AutokitError::UnknownName(name) => write!(f, "unknown name: `{name}`"),
            AutokitError::VocabFull { kind, max } => {
                write!(f, "vocabulary full: at most {max} {kind} are supported")
            }
            AutokitError::InvalidState(idx) => write!(f, "state index {idx} out of range"),
            AutokitError::NoInitialState => write!(f, "automaton has no initial state"),
            AutokitError::VocabMismatch => {
                write!(f, "components were built against different vocabularies")
            }
            AutokitError::InvalidName(name) => {
                write!(f, "invalid name `{name}`: only lowercase letters, digits, spaces, `-` and `_` are allowed")
            }
        }
    }
}

impl std::error::Error for AutokitError {}
