use crate::{PropSet, Vocab};
use serde::{Deserialize, Serialize};

/// Index of a state in a [`WorldModel`].
pub type ModelState = usize;

/// A transition-system world model `M = ⟨Γ_M, Q_M, δ_M, λ_M⟩`.
///
/// States carry labels `λ_M(p) ∈ 2^P`; the transition relation is
/// non-deterministic. World models encode "the static and dynamic
/// information of a system or an environment" (paper, Section 3) — e.g. the
/// phases of a traffic light and the arrivals of cars and pedestrians.
///
/// Construct models either state-by-state with [`WorldModel::new`] /
/// [`WorldModel::add_state`] / [`WorldModel::add_transition`], or with the
/// paper's Algorithm 1 via [`WorldModelBuilder`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldModel {
    /// Human-readable model name (used in DOT export and reports).
    name: String,
    labels: Vec<PropSet>,
    /// Adjacency list: `succs[p]` is the set of `p'` with `δ_M(p, p') = 1`.
    succs: Vec<Vec<ModelState>>,
}

impl WorldModel {
    /// Creates an empty model with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        WorldModel {
            name: name.into(),
            labels: Vec::new(),
            succs: Vec::new(),
        }
    }

    /// Display name of the model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a state labeled `label` and returns its index.
    pub fn add_state(&mut self, label: PropSet) -> ModelState {
        self.labels.push(label);
        self.succs.push(Vec::new());
        self.labels.len() - 1
    }

    /// Adds the transition `from → to`. Duplicate insertions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either state index is out of range.
    pub fn add_transition(&mut self, from: ModelState, to: ModelState) {
        assert!(from < self.labels.len(), "state index {from} out of range");
        assert!(to < self.labels.len(), "state index {to} out of range");
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// The label `λ_M(p)` of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn label(&self, state: ModelState) -> PropSet {
        self.labels[state]
    }

    /// Successors of a state under `δ_M`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn successors(&self, state: ModelState) -> &[ModelState] {
        &self.succs[state]
    }

    /// Number of states `|Q_M|`.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = ModelState> {
        0..self.labels.len()
    }

    /// `true` iff `δ_M(from, to) = 1`.
    pub fn has_transition(&self, from: ModelState, to: ModelState) -> bool {
        self.succs.get(from).is_some_and(|s| s.contains(&to))
    }

    /// Forms the disjoint union of two models, preserving all transitions.
    ///
    /// The paper integrates per-scenario models "together to form a
    /// universal model representing the entire system" (Section 5.1). The
    /// union has no cross-model transitions; a controller is verified
    /// against every scenario's dynamics from every initial state.
    #[must_use]
    pub fn union(&self, other: &WorldModel) -> WorldModel {
        let mut merged = self.clone();
        merged.name = format!("{} ∪ {}", self.name, other.name);
        let offset = merged.num_states();
        for s in other.states() {
            merged.add_state(other.label(s));
        }
        for s in other.states() {
            for &t in other.successors(s) {
                merged.add_transition(offset + s, offset + t);
            }
        }
        merged
    }

    /// Removes states with no incoming *and* no outgoing transitions
    /// (the final pruning step of Algorithm 1). Returns the number of
    /// removed states.
    pub fn prune_isolated(&mut self) -> usize {
        let n = self.labels.len();
        let mut has_out = vec![false; n];
        let mut has_in = vec![false; n];
        for (s, succs) in self.succs.iter().enumerate() {
            // A pure self-loop still counts as activity.
            if !succs.is_empty() {
                has_out[s] = true;
            }
            for &t in succs {
                has_in[t] = true;
            }
        }
        let keep: Vec<bool> = (0..n).map(|s| has_out[s] || has_in[s]).collect();
        let mut remap = vec![usize::MAX; n];
        let mut next = 0;
        for s in 0..n {
            if keep[s] {
                remap[s] = next;
                next += 1;
            }
        }
        let removed = n - next;
        if removed == 0 {
            return 0;
        }
        let mut labels = Vec::with_capacity(next);
        let mut succs = vec![Vec::new(); next];
        for s in 0..n {
            if keep[s] {
                labels.push(self.labels[s]);
                succs[remap[s]] = self.succs[s]
                    .iter()
                    .filter(|&&t| keep[t])
                    .map(|&t| remap[t])
                    .collect();
            }
        }
        self.labels = labels;
        self.succs = succs;
        removed
    }
}

/// Builds a [`WorldModel`] with the paper's **Algorithm 1**: enumerate all
/// `2^|P|` candidate states, keep the transitions the system supports, and
/// prune isolated states.
///
/// The closure given to [`allow_transitions`](Self::allow_transitions)
/// plays the role of the system `S` in Algorithm 1: it answers "does the
/// system support a step from a state labeled `from` to a state labeled
/// `to`?".
///
/// For vocabularies with many propositions the exponential enumeration is
/// wasteful; [`keep_singletons_only`](Self::keep_singletons_only) and
/// [`restrict_labels`](Self::restrict_labels) bound the candidate set. The
/// fully enumerated variant is retained deliberately — the paper calls it
/// the "conservative perspective" and we benchmark its verification-cost
/// blow-up in the `bench` crate (ablation A4).
pub struct WorldModelBuilder<'v> {
    vocab: &'v Vocab,
    name: String,
    candidates: Vec<PropSet>,
    allow: Option<Box<dyn Fn(PropSet, PropSet) -> bool + 'v>>,
    prune: bool,
}

impl<'v> WorldModelBuilder<'v> {
    /// Starts a builder over the given vocabulary, with all `2^|P|`
    /// candidate labels.
    pub fn new(vocab: &'v Vocab) -> Self {
        let n = vocab.num_props();
        let candidates = (0..(1u64 << n))
            .map(|b| PropSet::from_bits(b as u32))
            .collect();
        WorldModelBuilder {
            vocab,
            name: "world model".to_owned(),
            candidates,
            allow: None,
            prune: true,
        }
    }

    /// Sets the model's display name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Restricts candidate states to singleton labels (exactly one
    /// proposition true) plus the empty label.
    #[must_use]
    pub fn keep_singletons_only(mut self) -> Self {
        self.candidates.retain(|c| c.len() <= 1);
        self
    }

    /// Replaces the candidate label set entirely.
    #[must_use]
    pub fn restrict_labels(mut self, labels: impl IntoIterator<Item = PropSet>) -> Self {
        self.candidates = labels.into_iter().collect();
        self
    }

    /// Provides the system's transition predicate (Algorithm 1's
    /// "if `p_i → p_j` is allowed by `S`").
    #[must_use]
    pub fn allow_transitions(mut self, allow: impl Fn(PropSet, PropSet) -> bool + 'v) -> Self {
        self.allow = Some(Box::new(allow));
        self
    }

    /// Keeps every candidate state even if isolated (the paper's
    /// "conservative perspective"). Default is to prune.
    #[must_use]
    pub fn conservative(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Runs Algorithm 1 and returns the model.
    pub fn build(self) -> WorldModel {
        let _ = self.vocab; // the vocabulary fixes |P| for candidate enumeration
        let mut model = WorldModel::new(self.name);
        for &label in &self.candidates {
            model.add_state(label);
        }
        if let Some(allow) = &self.allow {
            for (i, &li) in self.candidates.iter().enumerate() {
                for (j, &lj) in self.candidates.iter().enumerate() {
                    if allow(li, lj) {
                        model.add_transition(i, j);
                    }
                }
            }
        }
        if self.prune {
            model.prune_isolated();
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocab;

    fn traffic_vocab() -> (Vocab, PropSet, PropSet, PropSet) {
        let mut v = Vocab::new();
        let g = v.add_prop("green").unwrap();
        let y = v.add_prop("yellow").unwrap();
        let r = v.add_prop("red").unwrap();
        (
            v,
            PropSet::singleton(g),
            PropSet::singleton(y),
            PropSet::singleton(r),
        )
    }

    #[test]
    fn algorithm1_traffic_light() {
        // The paper's Section 4.1 example: green → yellow → red → green
        // (the prose lists the cycle order red-green-yellow-red with
        // transitions written per pair; we use the figure's convention).
        let (v, g, y, r) = traffic_vocab();
        let model = WorldModelBuilder::new(&v)
            .allow_transitions(move |from, to| {
                (from == g && to == y) || (from == y && to == r) || (from == r && to == g)
            })
            .build();
        // 2^3 = 8 candidates pruned to the 3 participating states.
        assert_eq!(model.num_states(), 3);
        assert_eq!(model.num_transitions(), 3);
        // Every kept state has exactly one successor.
        for s in model.states() {
            assert_eq!(model.successors(s).len(), 1);
        }
    }

    #[test]
    fn conservative_keeps_all_states() {
        let (v, g, y, _r) = traffic_vocab();
        let model = WorldModelBuilder::new(&v)
            .conservative()
            .allow_transitions(move |from, to| from == g && to == y)
            .build();
        assert_eq!(model.num_states(), 8);
    }

    #[test]
    fn prune_removes_only_isolated() {
        let mut m = WorldModel::new("t");
        let a = m.add_state(PropSet::empty());
        let b = m.add_state(PropSet::from_bits(1));
        let c = m.add_state(PropSet::from_bits(2)); // isolated
        m.add_transition(a, b);
        let removed = m.prune_isolated();
        assert_eq!(removed, 1);
        assert_eq!(m.num_states(), 2);
        assert!(m.has_transition(0, 1));
        let _ = c;
    }

    #[test]
    fn self_loop_survives_pruning() {
        let mut m = WorldModel::new("t");
        let a = m.add_state(PropSet::empty());
        m.add_transition(a, a);
        assert_eq!(m.prune_isolated(), 0);
        assert_eq!(m.num_states(), 1);
    }

    #[test]
    fn union_offsets_states() {
        let mut m1 = WorldModel::new("a");
        let a = m1.add_state(PropSet::from_bits(1));
        m1.add_transition(a, a);
        let mut m2 = WorldModel::new("b");
        let b0 = m2.add_state(PropSet::from_bits(2));
        let b1 = m2.add_state(PropSet::from_bits(4));
        m2.add_transition(b0, b1);
        let u = m1.union(&m2);
        assert_eq!(u.num_states(), 3);
        assert!(u.has_transition(0, 0));
        assert!(u.has_transition(1, 2));
        assert!(!u.has_transition(0, 1));
        assert_eq!(u.num_transitions(), 2);
    }

    #[test]
    fn duplicate_transition_ignored() {
        let mut m = WorldModel::new("t");
        let a = m.add_state(PropSet::empty());
        let b = m.add_state(PropSet::empty());
        m.add_transition(a, b);
        m.add_transition(a, b);
        assert_eq!(m.num_transitions(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_bounds_checked() {
        let mut m = WorldModel::new("t");
        let a = m.add_state(PropSet::empty());
        m.add_transition(a, 7);
    }

    #[test]
    fn restrict_labels_builder() {
        let (v, g, y, r) = traffic_vocab();
        let model = WorldModelBuilder::new(&v)
            .restrict_labels([g, y, r])
            .allow_transitions(|_, _| true)
            .build();
        assert_eq!(model.num_states(), 3);
        assert_eq!(model.num_transitions(), 9);
    }
}
