use crate::{Controller, Product, Vocab, WorldModel};
use std::fmt::Write as _;

/// Graphviz DOT rendering for automata, for inspection and documentation.
///
/// The rendered figures correspond to the paper's automaton diagrams
/// (Figures 1, 5–7, 15–18).
pub trait ToDot {
    /// Renders the structure as a Graphviz `digraph`.
    fn to_dot(&self, vocab: &Vocab) -> String;
}

fn esc(s: &str) -> String {
    s.replace('"', "\\\"")
}

impl ToDot for WorldModel {
    fn to_dot(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", esc(self.name()));
        let _ = writeln!(out, "  rankdir=LR;");
        for s in self.states() {
            let _ = writeln!(
                out,
                "  m{s} [label=\"{}\", shape=circle];",
                esc(&vocab.display_props(self.label(s)))
            );
        }
        for s in self.states() {
            for &t in self.successors(s) {
                let _ = writeln!(out, "  m{s} -> m{t};");
            }
        }
        out.push_str("}\n");
        out
    }
}

impl ToDot for Controller {
    fn to_dot(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", esc(self.name()));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  init [shape=point];");
        for q in 0..self.num_states() {
            let _ = writeln!(out, "  q{q} [label=\"q{q}\", shape=circle];");
        }
        let _ = writeln!(out, "  init -> q{};", self.initial());
        for t in self.transitions() {
            let mut guard_parts = Vec::new();
            for p in t.guard.pos.iter() {
                guard_parts.push(vocab.prop_name(p).to_owned());
            }
            for p in t.guard.neg.iter() {
                guard_parts.push(format!("¬{}", vocab.prop_name(p)));
            }
            let guard = if guard_parts.is_empty() {
                "⊤".to_owned()
            } else {
                guard_parts.join(" ∧ ")
            };
            let _ = writeln!(
                out,
                "  q{} -> q{} [label=\"{} / {}\"];",
                t.from,
                t.to,
                esc(&guard),
                esc(&vocab.display_acts(t.action))
            );
        }
        out.push_str("}\n");
        out
    }
}

impl ToDot for Product {
    fn to_dot(&self, vocab: &Vocab) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph product {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for (i, s) in self.states().iter().enumerate() {
            let shape = if self.initial().contains(&i) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  s{i} [label=\"(p{}, q{})\", shape={shape}];",
                s.model, s.ctrl
            );
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "  s{} -> s{} [label=\"{} / {}\"];",
                e.from,
                e.to,
                esc(&vocab.display_props(e.props)),
                esc(&vocab.display_acts(e.acts))
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActSet, ControllerBuilder, Guard, PropSet};

    #[test]
    fn dot_outputs_are_well_formed() {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        let go = v.add_act("go").unwrap();
        let mut model = WorldModel::new("light");
        let a = model.add_state(PropSet::singleton(green));
        let b = model.add_state(PropSet::empty());
        model.add_transition(a, b);
        model.add_transition(b, a);
        let ctrl = ControllerBuilder::new("c", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(0, Guard::always().forbids(green), ActSet::empty(), 0)
            .build()
            .unwrap();
        let product = Product::build(&model, &ctrl);

        for dot in [model.to_dot(&v), ctrl.to_dot(&v), product.to_dot(&v)] {
            assert!(dot.starts_with("digraph"));
            assert!(dot.trim_end().ends_with('}'));
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        }
        assert!(ctrl.to_dot(&v).contains("¬green"));
        assert!(model.to_dot(&v).contains("green"));
    }
}
