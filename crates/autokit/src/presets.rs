//! Preset autonomous-driving world models from the paper.
//!
//! The paper's Section 5.1 fixes a driving vocabulary of ten observation
//! propositions and four actions, and builds one world model per road
//! scenario (its Figures 5, 6, 15, 16 and 17). The per-scenario models are
//! unioned into a "universal model representing the entire system", against
//! which synthesized controllers are verified.
//!
//! The dynamics follow the paper's figures: traffic-light phases advance
//! along their cycle, while at most one traffic participant (car or
//! pedestrian) appears or disappears per step. The single-change discipline
//! keeps models small without losing the adversarial interleavings that
//! matter — e.g. the Φ₅ counterexample of Section 5.1, where the light
//! turns red and a car arrives from the left *while* the controller is
//! waiting on pedestrians, is representable.

use crate::{ActId, PropId, PropSet, Vocab, WorldModel};

/// The autonomous-driving vocabulary and scenario models.
///
/// # Example
///
/// ```
/// use autokit::presets::DrivingDomain;
///
/// let domain = DrivingDomain::new();
/// let universal = domain.universal_model();
/// assert!(universal.num_states() > 20);
/// assert_eq!(domain.vocab.num_props(), 10);
/// assert_eq!(domain.vocab.num_acts(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DrivingDomain {
    /// The shared vocabulary (`P`, `P_A`).
    pub vocab: Vocab,
    /// `green traffic light`
    pub green_tl: PropId,
    /// `green left-turn light`
    pub green_ll: PropId,
    /// `flashing left-turn light`
    pub flashing_ll: PropId,
    /// `opposite car`
    pub opposite_car: PropId,
    /// `car from left`
    pub car_left: PropId,
    /// `car from right`
    pub car_right: PropId,
    /// `pedestrian at left`
    pub ped_left: PropId,
    /// `pedestrian at right`
    pub ped_right: PropId,
    /// `pedestrian in front`
    pub ped_front: PropId,
    /// `stop sign`
    pub stop_sign: PropId,
    /// `stop`
    pub stop: ActId,
    /// `turn left`
    pub turn_left: ActId,
    /// `turn right`
    pub turn_right: ActId,
    /// `go straight`
    pub go_straight: ActId,
}

impl Default for DrivingDomain {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of propositions that differ between two labels.
fn hamming(a: PropSet, b: PropSet) -> u32 {
    (a.bits() ^ b.bits()).count_ones()
}

impl DrivingDomain {
    /// Builds the paper's driving vocabulary.
    // ALLOW: the vocabulary is built from distinct literals into a fresh `Vocab`;
    // an `expect` failure here is a bug in this constructor.
    #[allow(clippy::expect_used)]
    pub fn new() -> Self {
        let mut vocab = Vocab::new();
        let green_tl = vocab.add_prop("green traffic light").expect("fresh vocab");
        let green_ll = vocab
            .add_prop("green left-turn light")
            .expect("fresh vocab");
        let flashing_ll = vocab
            .add_prop("flashing left-turn light")
            .expect("fresh vocab");
        let opposite_car = vocab.add_prop("opposite car").expect("fresh vocab");
        let car_left = vocab.add_prop("car from left").expect("fresh vocab");
        let car_right = vocab.add_prop("car from right").expect("fresh vocab");
        let ped_left = vocab.add_prop("pedestrian at left").expect("fresh vocab");
        let ped_right = vocab.add_prop("pedestrian at right").expect("fresh vocab");
        let ped_front = vocab.add_prop("pedestrian in front").expect("fresh vocab");
        let stop_sign = vocab.add_prop("stop sign").expect("fresh vocab");
        let stop = vocab.add_act("stop").expect("fresh vocab");
        let turn_left = vocab.add_act("turn left").expect("fresh vocab");
        let turn_right = vocab.add_act("turn right").expect("fresh vocab");
        let go_straight = vocab.add_act("go straight").expect("fresh vocab");
        DrivingDomain {
            vocab,
            green_tl,
            green_ll,
            flashing_ll,
            opposite_car,
            car_left,
            car_right,
            ped_left,
            ped_right,
            ped_front,
            stop_sign,
            stop,
            turn_left,
            turn_right,
            go_straight,
        }
    }

    /// Enumerates all subsets of `free` bits, each unioned with `base`.
    fn labels_over(&self, base: PropSet, free: &[PropId]) -> Vec<PropSet> {
        let n = free.len();
        (0..(1usize << n))
            .map(|mask| {
                let mut label = base;
                for (i, &p) in free.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        label.insert(p);
                    }
                }
                label
            })
            .collect()
    }

    /// Regular traffic-light intersection (paper Figure 5).
    ///
    /// The traffic light toggles between green and red on its own schedule;
    /// cars (from the left and the opposite direction) and pedestrians (at
    /// the right, in front) arrive and leave one at a time.
    pub fn traffic_light_model(&self) -> WorldModel {
        let free = [
            self.car_left,
            self.opposite_car,
            self.ped_right,
            self.ped_front,
        ];
        let labels = self
            .labels_over(PropSet::empty(), &free)
            .into_iter()
            .flat_map(|l| [l, l.with(self.green_tl)])
            .collect::<Vec<_>>();
        let traffic = PropSet::empty()
            .with(self.car_left)
            .with(self.opposite_car)
            .with(self.ped_right)
            .with(self.ped_front);
        let mut model = WorldModel::new("traffic light intersection");
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                // Light may toggle or stay; at most one participant changes.
                if hamming(li & traffic, lj & traffic) <= 1 {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// Intersection with a protected left-turn signal (paper Figure 15).
    ///
    /// The left-turn light cycles green → flashing → off → green; the
    /// phases are mutually exclusive. Opposite cars and pedestrians in
    /// front arrive/leave one at a time.
    pub fn left_turn_light_model(&self) -> WorldModel {
        let phases = [
            PropSet::singleton(self.green_ll),
            PropSet::singleton(self.flashing_ll),
            PropSet::empty(),
        ];
        let free = [self.opposite_car, self.ped_front];
        let mut model = WorldModel::new("left-turn signal intersection");
        let mut labels = Vec::new();
        for &phase in &phases {
            for l in self.labels_over(phase, &free) {
                labels.push(l);
            }
        }
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        let phase_of = |l: PropSet| -> usize {
            if l.contains(self.green_ll) {
                0
            } else if l.contains(self.flashing_ll) {
                1
            } else {
                2
            }
        };
        let traffic = PropSet::empty()
            .with(self.opposite_car)
            .with(self.ped_front);
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                let (pi, pj) = (phase_of(li), phase_of(lj));
                let phase_ok = pj == pi || pj == (pi + 1) % 3;
                if phase_ok && hamming(li & traffic, lj & traffic) <= 1 {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// Yield-based wide median (paper Figure 6): `σ₁ = car from left`,
    /// `σ₂ = car from right`.
    pub fn wide_median_model(&self) -> WorldModel {
        let free = [self.car_left, self.car_right];
        let labels = self.labels_over(PropSet::empty(), &free);
        let mut model = WorldModel::new("wide median");
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                if hamming(li, lj) <= 1 {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// Two-way stop sign (paper Figure 16). The `stop sign` proposition
    /// holds in every state; cross traffic and pedestrians arrive one at a
    /// time.
    pub fn two_way_stop_model(&self) -> WorldModel {
        let base = PropSet::singleton(self.stop_sign);
        let free = [self.car_left, self.car_right, self.ped_front];
        let labels = self.labels_over(base, &free);
        let mut model = WorldModel::new("two-way stop");
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                if hamming(li, lj) <= 1 {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// Roundabout (paper Figure 17). Per the figure's caption, `car`
    /// represents `car from left` and `ped` represents `pedestrian at left
    /// ∧ pedestrian at right`, so the two pedestrian propositions toggle
    /// together.
    pub fn roundabout_model(&self) -> WorldModel {
        let ped = PropSet::empty().with(self.ped_left).with(self.ped_right);
        let car = PropSet::singleton(self.car_left);
        let labels = [PropSet::empty(), car, ped, car | ped];
        let mut model = WorldModel::new("roundabout");
        let states: Vec<_> = labels.iter().map(|&l| model.add_state(l)).collect();
        for (i, &li) in labels.iter().enumerate() {
            for (j, &lj) in labels.iter().enumerate() {
                // One "entity" (the car, or the pedestrian pair) changes at
                // a time.
                let car_change = (li & car) != (lj & car);
                let ped_change = (li & ped) != (lj & ped);
                if !(car_change && ped_change) {
                    model.add_transition(states[i], states[j]);
                }
            }
        }
        model
    }

    /// The union of all five scenario models — the paper's "universal model
    /// representing the entire system" (Section 5.1).
    pub fn universal_model(&self) -> WorldModel {
        self.traffic_light_model()
            .union(&self.left_turn_light_model())
            .union(&self.wide_median_model())
            .union(&self.two_way_stop_model())
            .union(&self.roundabout_model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_matches_paper() {
        let d = DrivingDomain::new();
        assert_eq!(d.vocab.num_props(), 10);
        assert_eq!(d.vocab.num_acts(), 4);
        assert_eq!(d.vocab.prop_name(d.green_tl), "green traffic light");
        assert_eq!(d.vocab.act_name(d.go_straight), "go straight");
        // Lookup by the paper's names round-trips.
        assert_eq!(d.vocab.prop("car from left").unwrap(), d.car_left);
        assert_eq!(d.vocab.act("turn right").unwrap(), d.turn_right);
    }

    #[test]
    fn traffic_light_model_shape() {
        let d = DrivingDomain::new();
        let m = d.traffic_light_model();
        // 2 light phases × 2^4 participant combinations.
        assert_eq!(m.num_states(), 32);
        // Every state can at least stay put.
        for s in m.states() {
            assert!(m.has_transition(s, s));
        }
    }

    #[test]
    fn traffic_light_single_change_discipline() {
        let d = DrivingDomain::new();
        let m = d.traffic_light_model();
        let traffic = PropSet::empty()
            .with(d.car_left)
            .with(d.opposite_car)
            .with(d.ped_right)
            .with(d.ped_front);
        for s in m.states() {
            for &t in m.successors(s) {
                assert!(hamming(m.label(s) & traffic, m.label(t) & traffic) <= 1);
            }
        }
    }

    #[test]
    fn phi5_edge_case_representable() {
        // The paper's Section 5.1 counterexample: from (green, no car) the
        // environment can move to (¬green, car from left) in two steps
        // while a pedestrian situation holds.
        let d = DrivingDomain::new();
        let m = d.traffic_light_model();
        let start = m
            .states()
            .find(|&s| m.label(s) == PropSet::singleton(d.green_tl).with(d.ped_right))
            .expect("state exists");
        // One step: light drops to red, pedestrian stays.
        let mid = m
            .successors(start)
            .iter()
            .copied()
            .find(|&s| m.label(s) == PropSet::singleton(d.ped_right))
            .expect("red+ped reachable");
        // Next step: car arrives from the left.
        let end = m
            .successors(mid)
            .iter()
            .copied()
            .find(|&s| m.label(s) == PropSet::singleton(d.ped_right).with(d.car_left));
        assert!(end.is_some());
    }

    #[test]
    fn left_turn_phases_cycle() {
        let d = DrivingDomain::new();
        let m = d.left_turn_light_model();
        assert_eq!(m.num_states(), 12);
        // From a green-LL state the flashing phase is reachable, but a
        // direct green→green (stay) is also allowed.
        let green = m
            .states()
            .find(|&s| m.label(s) == PropSet::singleton(d.green_ll))
            .unwrap();
        let succ_phases: Vec<PropSet> = m
            .successors(green)
            .iter()
            .map(|&s| m.label(s) & (PropSet::empty().with(d.green_ll).with(d.flashing_ll)))
            .collect();
        assert!(succ_phases.contains(&PropSet::singleton(d.green_ll)));
        assert!(succ_phases.contains(&PropSet::singleton(d.flashing_ll)));
        // Skipping straight from green to off is not allowed.
        assert!(!succ_phases.contains(&PropSet::empty()));
    }

    #[test]
    fn two_way_stop_always_has_sign() {
        let d = DrivingDomain::new();
        let m = d.two_way_stop_model();
        assert_eq!(m.num_states(), 8);
        for s in m.states() {
            assert!(m.label(s).contains(d.stop_sign));
        }
    }

    #[test]
    fn roundabout_pedestrians_move_together() {
        let d = DrivingDomain::new();
        let m = d.roundabout_model();
        assert_eq!(m.num_states(), 4);
        for s in m.states() {
            let l = m.label(s);
            assert_eq!(l.contains(d.ped_left), l.contains(d.ped_right));
        }
    }

    #[test]
    fn universal_model_is_disjoint_union() {
        let d = DrivingDomain::new();
        let u = d.universal_model();
        let expected = d.traffic_light_model().num_states()
            + d.left_turn_light_model().num_states()
            + d.wide_median_model().num_states()
            + d.two_way_stop_model().num_states()
            + d.roundabout_model().num_states();
        assert_eq!(u.num_states(), expected);
    }
}
