use crate::{ActSet, AutokitError, PropSet, Result};
use serde::{Deserialize, Serialize};

/// Index of a state in a [`Controller`].
pub type CtrlState = usize;

/// A transition guard: a conjunction of literals over the proposition set.
///
/// A guard is satisfied by a symbol `σ ∈ 2^P` iff every proposition in
/// `pos` is in `σ` and no proposition in `neg` is. This is exactly the
/// guard language the GLM2FSA grammar produces (`if no car from left and no
/// pedestrian at right …`), and it keeps guard evaluation O(1).
///
/// [`Guard::always`] (empty `pos` and `neg`) matches every symbol.
///
/// # Example
///
/// ```
/// use autokit::{Guard, PropSet, Vocab};
/// let mut v = Vocab::new();
/// let car = v.add_prop("car from left")?;
/// let ped = v.add_prop("pedestrian at right")?;
/// let guard = Guard::always().requires(car).forbids(ped);
/// assert!(guard.matches(PropSet::singleton(car)));
/// assert!(!guard.matches(PropSet::singleton(car).with(ped)));
/// # Ok::<(), autokit::AutokitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Guard {
    /// Propositions that must hold.
    pub pos: PropSet,
    /// Propositions that must not hold.
    pub neg: PropSet,
}

impl Guard {
    /// The guard that matches every symbol (`true`).
    pub const fn always() -> Self {
        Guard {
            pos: PropSet::empty(),
            neg: PropSet::empty(),
        }
    }

    /// Adds a positive literal.
    #[must_use]
    pub fn requires(mut self, prop: crate::PropId) -> Self {
        self.pos.insert(prop);
        self
    }

    /// Adds a negative literal.
    #[must_use]
    pub fn forbids(mut self, prop: crate::PropId) -> Self {
        self.neg.insert(prop);
        self
    }

    /// Evaluates the guard against a symbol.
    pub fn matches(self, sigma: PropSet) -> bool {
        sigma.is_superset(self.pos) && sigma.is_disjoint(self.neg)
    }

    /// `true` iff the guard is syntactically unsatisfiable (some literal
    /// appears both positively and negatively).
    pub fn is_contradictory(self) -> bool {
        !self.pos.is_disjoint(self.neg)
    }

    /// `true` iff this guard matches every symbol.
    pub fn is_always(self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// The negation of this guard as a disjunction of literal guards.
    ///
    /// `¬(a ∧ b ∧ ¬c)` = `¬a ∨ ¬b ∨ c`; each disjunct is returned as its own
    /// single-literal [`Guard`]. Used by GLM2FSA to build "else" branches.
    pub fn negation(self) -> Vec<Guard> {
        let mut out = Vec::new();
        for p in self.pos.iter() {
            out.push(Guard {
                pos: PropSet::empty(),
                neg: PropSet::singleton(p),
            });
        }
        for p in self.neg.iter() {
            out.push(Guard {
                pos: PropSet::singleton(p),
                neg: PropSet::empty(),
            });
        }
        out
    }
}

/// One controller transition `δ(q, σ, a, q') = 1`, with the symbol
/// component factored as a [`Guard`] over `2^P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlTransition {
    /// Source state.
    pub from: CtrlState,
    /// Guard over the observed symbol.
    pub guard: Guard,
    /// Emitted action set (empty = `ε`).
    pub action: ActSet,
    /// Destination state.
    pub to: CtrlState,
}

/// A finite-state-automaton controller `A = ⟨Σ, A, Q, q₀, δ⟩` (paper,
/// Section 3).
///
/// Input symbols are `σ ∈ 2^P` (environment observations), output symbols
/// are `a ∈ 2^{P_A}` (actions, with `ε` = no-op). The transition function
/// is non-deterministic; [`Controller::enabled`] returns every transition
/// whose guard matches an observation.
///
/// Controllers are usually constructed from natural-language step lists by
/// the `glm2fsa` crate, but can be built manually via [`ControllerBuilder`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Controller {
    name: String,
    num_states: usize,
    initial: CtrlState,
    transitions: Vec<CtrlTransition>,
    /// Per-state transition index for O(out-degree) lookup.
    outgoing: Vec<Vec<usize>>,
}

impl Controller {
    /// Display name (usually the task description, e.g. `"turn right at
    /// the traffic light"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state `q₀`.
    pub fn initial(&self) -> CtrlState {
        self.initial
    }

    /// All transitions.
    pub fn transitions(&self) -> &[CtrlTransition] {
        &self.transitions
    }

    /// Transitions leaving `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn outgoing(&self, state: CtrlState) -> impl Iterator<Item = &CtrlTransition> {
        self.outgoing[state].iter().map(|&i| &self.transitions[i])
    }

    /// Transitions from `state` enabled under observation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn enabled(
        &self,
        state: CtrlState,
        sigma: PropSet,
    ) -> impl Iterator<Item = &CtrlTransition> {
        self.outgoing(state).filter(move |t| t.guard.matches(sigma))
    }

    /// `true` iff some transition is enabled from `state` under `sigma`.
    pub fn has_enabled(&self, state: CtrlState, sigma: PropSet) -> bool {
        self.enabled(state, sigma).next().is_some()
    }

    /// States with no outgoing transitions at all (potential deadlocks in
    /// the product automaton).
    pub fn terminal_states(&self) -> Vec<CtrlState> {
        (0..self.num_states)
            .filter(|&s| self.outgoing[s].is_empty())
            .collect()
    }

    /// The set of actions the controller can ever emit.
    pub fn action_alphabet(&self) -> ActSet {
        self.transitions
            .iter()
            .fold(ActSet::empty(), |acc, t| acc | t.action)
    }
}

/// Builder for [`Controller`].
///
/// # Example
///
/// ```
/// use autokit::{ActSet, ControllerBuilder, Guard, Vocab};
/// let mut v = Vocab::new();
/// let green = v.add_prop("green traffic light")?;
/// let go = v.add_act("go straight")?;
/// let stop = v.add_act("stop")?;
///
/// let ctrl = ControllerBuilder::new("cross when green", 2)
///     .initial(0)
///     .transition(0, Guard::always().requires(green), ActSet::singleton(go), 1)
///     .transition(0, Guard::always().forbids(green), ActSet::singleton(stop), 0)
///     .transition(1, Guard::always(), ActSet::empty(), 1)
///     .build()?;
/// assert_eq!(ctrl.num_states(), 2);
/// # Ok::<(), autokit::AutokitError>(())
/// ```
#[derive(Debug)]
pub struct ControllerBuilder {
    name: String,
    num_states: usize,
    initial: Option<CtrlState>,
    transitions: Vec<CtrlTransition>,
}

impl ControllerBuilder {
    /// Starts a builder for a controller with `num_states` states.
    pub fn new(name: impl Into<String>, num_states: usize) -> Self {
        ControllerBuilder {
            name: name.into(),
            num_states,
            initial: None,
            transitions: Vec::new(),
        }
    }

    /// Sets the initial state `q₀`.
    #[must_use]
    pub fn initial(mut self, state: CtrlState) -> Self {
        self.initial = Some(state);
        self
    }

    /// Adds a transition.
    #[must_use]
    pub fn transition(
        mut self,
        from: CtrlState,
        guard: Guard,
        action: ActSet,
        to: CtrlState,
    ) -> Self {
        self.transitions.push(CtrlTransition {
            from,
            guard,
            action,
            to,
        });
        self
    }

    /// Finalizes the controller.
    ///
    /// # Errors
    ///
    /// Returns [`AutokitError::NoInitialState`] if no initial state was
    /// set, and [`AutokitError::InvalidState`] if the initial state or any
    /// transition endpoint is out of range.
    pub fn build(self) -> Result<Controller> {
        let initial = self.initial.ok_or(AutokitError::NoInitialState)?;
        if initial >= self.num_states {
            return Err(AutokitError::InvalidState(initial));
        }
        for t in &self.transitions {
            if t.from >= self.num_states {
                return Err(AutokitError::InvalidState(t.from));
            }
            if t.to >= self.num_states {
                return Err(AutokitError::InvalidState(t.to));
            }
        }
        let mut outgoing = vec![Vec::new(); self.num_states];
        for (i, t) in self.transitions.iter().enumerate() {
            outgoing[t.from].push(i);
        }
        Ok(Controller {
            name: self.name,
            num_states: self.num_states,
            initial,
            transitions: self.transitions,
            outgoing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PropId, Vocab};
    use proptest::prelude::*;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.add_prop("green").unwrap();
        v.add_prop("car").unwrap();
        v.add_act("go").unwrap();
        v.add_act("stop").unwrap();
        v
    }

    #[test]
    fn guard_semantics() {
        let v = vocab();
        let green = v.prop("green").unwrap();
        let car = v.prop("car").unwrap();
        let g = Guard::always().requires(green).forbids(car);
        assert!(g.matches(PropSet::singleton(green)));
        assert!(!g.matches(PropSet::singleton(green).with(car)));
        assert!(!g.matches(PropSet::empty()));
        assert!(Guard::always().matches(PropSet::empty()));
    }

    #[test]
    fn guard_negation_covers_complement() {
        let v = vocab();
        let green = v.prop("green").unwrap();
        let car = v.prop("car").unwrap();
        let g = Guard::always().requires(green).forbids(car);
        let negs = g.negation();
        // Over all 4 symbols: exactly the symbols not matching g match some
        // negation disjunct.
        for bits in 0..4u32 {
            let sigma = PropSet::from_bits(bits);
            let matched_neg = negs.iter().any(|n| n.matches(sigma));
            assert_eq!(matched_neg, !g.matches(sigma), "sigma={bits:b}");
        }
        let _ = (green, car);
    }

    #[test]
    fn contradictory_guard_detected() {
        let p = PropId(0);
        let g = Guard::always().requires(p).forbids(p);
        assert!(g.is_contradictory());
        assert!(!g.matches(PropSet::empty()));
        assert!(!g.matches(PropSet::singleton(p)));
    }

    #[test]
    fn builder_validates_states() {
        let bad = ControllerBuilder::new("x", 2).initial(5).build();
        assert!(matches!(bad, Err(AutokitError::InvalidState(5))));

        let bad = ControllerBuilder::new("x", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 9)
            .build();
        assert!(matches!(bad, Err(AutokitError::InvalidState(9))));

        let bad = ControllerBuilder::new("x", 2).build();
        assert!(matches!(bad, Err(AutokitError::NoInitialState)));
    }

    #[test]
    fn enabled_filters_by_guard() {
        let v = vocab();
        let green = v.prop("green").unwrap();
        let go = v.act("go").unwrap();
        let stop = v.act("stop").unwrap();
        let ctrl = ControllerBuilder::new("t", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(
                0,
                Guard::always().forbids(green),
                ActSet::singleton(stop),
                0,
            )
            .build()
            .unwrap();
        let when_green: Vec<_> = ctrl.enabled(0, PropSet::singleton(green)).collect();
        assert_eq!(when_green.len(), 1);
        assert!(when_green[0].action.contains(go));
        let when_red: Vec<_> = ctrl.enabled(0, PropSet::empty()).collect();
        assert_eq!(when_red.len(), 1);
        assert!(when_red[0].action.contains(stop));
    }

    #[test]
    fn terminal_states_and_alphabet() {
        let v = vocab();
        let go = v.act("go").unwrap();
        let ctrl = ControllerBuilder::new("t", 3)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .build()
            .unwrap();
        assert_eq!(ctrl.terminal_states(), vec![1, 2]);
        assert_eq!(ctrl.action_alphabet(), ActSet::singleton(go));
    }

    proptest! {
        #[test]
        fn guard_matches_iff_literals_hold(
            pos in any::<u32>(), neg in any::<u32>(), sigma in any::<u32>()
        ) {
            let g = Guard { pos: PropSet::from_bits(pos), neg: PropSet::from_bits(neg) };
            let s = PropSet::from_bits(sigma);
            let expected = (pos & sigma) == pos && (neg & sigma) == 0;
            prop_assert_eq!(g.matches(s), expected);
        }

        #[test]
        fn negation_is_exact_complement(pos in 0u32..16, neg in 0u32..16, sigma in 0u32..16) {
            let g = Guard { pos: PropSet::from_bits(pos), neg: PropSet::from_bits(neg) };
            prop_assume!(!g.is_contradictory());
            let s = PropSet::from_bits(sigma);
            let neg_matches = g.negation().iter().any(|n| n.matches(s));
            prop_assert_eq!(neg_matches, !g.matches(s));
        }
    }
}
