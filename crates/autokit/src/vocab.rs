use crate::{ActSet, AutokitError, PropSet, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Maximum number of atomic propositions a [`Vocab`] can hold.
///
/// Symbols `σ ∈ 2^P` are stored as `u32` bitsets, so the proposition set is
/// capped at 32 entries. The paper's driving domain uses 10 propositions and
/// 4 actions, so this leaves ample headroom.
pub const MAX_PROPS: usize = 32;

/// Maximum number of action propositions a [`Vocab`] can hold.
pub const MAX_ACTS: usize = 32;

/// Identifier of an atomic proposition in a [`Vocab`].
///
/// Propositions describe environment observations, e.g. `green traffic
/// light` or `pedestrian at right` in the paper's driving domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PropId(pub(crate) u8);

/// Identifier of an action proposition in a [`Vocab`].
///
/// Actions are the controller's outputs, e.g. `stop` or `turn right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActId(pub(crate) u8);

impl PropId {
    /// Numeric index of this proposition within its vocabulary.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ActId {
    /// Numeric index of this action within its vocabulary.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned vocabulary of atomic propositions `P` and actions `P_A`.
///
/// Every automaton in this crate is built against a single `Vocab`; symbols
/// are bitsets indexed by [`PropId`] / [`ActId`]. The vocabulary corresponds
/// to the paper's externally provided sets of behaviours and control
/// signals (Section 4.1: "We encode the set of behaviors in an atomic
/// proposition set P and the set of actions in an atomic proposition set
/// P_A").
///
/// # Example
///
/// ```
/// use autokit::Vocab;
///
/// let mut vocab = Vocab::new();
/// let ped = vocab.add_prop("pedestrian in front")?;
/// let stop = vocab.add_act("stop")?;
/// assert_eq!(vocab.prop_name(ped), "pedestrian in front");
/// assert_eq!(vocab.act_name(stop), "stop");
/// # Ok::<(), autokit::AutokitError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    props: Vec<String>,
    acts: Vec<String>,
    #[serde(skip)]
    prop_index: HashMap<String, PropId>,
    #[serde(skip)]
    act_index: HashMap<String, ActId>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " -_".contains(c))
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an atomic proposition and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`AutokitError::DuplicateName`] if the name is already
    /// registered (as a proposition *or* an action — the two namespaces are
    /// shared, because LTL specifications mix both),
    /// [`AutokitError::InvalidName`] for names outside `[a-z0-9 _-]`, and
    /// [`AutokitError::VocabFull`] past [`MAX_PROPS`] entries.
    pub fn add_prop(&mut self, name: &str) -> Result<PropId> {
        if !valid_name(name) {
            return Err(AutokitError::InvalidName(name.to_owned()));
        }
        if self.prop_index.contains_key(name) || self.act_index.contains_key(name) {
            return Err(AutokitError::DuplicateName(name.to_owned()));
        }
        if self.props.len() >= MAX_PROPS {
            return Err(AutokitError::VocabFull {
                kind: "propositions",
                max: MAX_PROPS,
            });
        }
        let id = PropId(self.props.len() as u8);
        self.props.push(name.to_owned());
        self.prop_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Registers an action proposition and returns its id.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Vocab::add_prop`], with the cap
    /// [`MAX_ACTS`].
    pub fn add_act(&mut self, name: &str) -> Result<ActId> {
        if !valid_name(name) {
            return Err(AutokitError::InvalidName(name.to_owned()));
        }
        if self.prop_index.contains_key(name) || self.act_index.contains_key(name) {
            return Err(AutokitError::DuplicateName(name.to_owned()));
        }
        if self.acts.len() >= MAX_ACTS {
            return Err(AutokitError::VocabFull {
                kind: "actions",
                max: MAX_ACTS,
            });
        }
        let id = ActId(self.acts.len() as u8);
        self.acts.push(name.to_owned());
        self.act_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up a proposition by name.
    pub fn prop(&self, name: &str) -> Result<PropId> {
        self.prop_index
            .get(name)
            .copied()
            .ok_or_else(|| AutokitError::UnknownName(name.to_owned()))
    }

    /// Looks up an action by name.
    pub fn act(&self, name: &str) -> Result<ActId> {
        self.act_index
            .get(name)
            .copied()
            .ok_or_else(|| AutokitError::UnknownName(name.to_owned()))
    }

    /// Name of a proposition.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different vocabulary and is out of range.
    pub fn prop_name(&self, id: PropId) -> &str {
        &self.props[id.index()]
    }

    /// Name of an action.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different vocabulary and is out of range.
    pub fn act_name(&self, id: ActId) -> &str {
        &self.acts[id.index()]
    }

    /// Number of registered propositions `|P|`.
    pub fn num_props(&self) -> usize {
        self.props.len()
    }

    /// Number of registered actions `|P_A|`.
    pub fn num_acts(&self) -> usize {
        self.acts.len()
    }

    /// Iterates over all proposition ids.
    pub fn props(&self) -> impl Iterator<Item = PropId> + '_ {
        (0..self.props.len()).map(|i| PropId(i as u8))
    }

    /// Iterates over all action ids.
    pub fn acts(&self) -> impl Iterator<Item = ActId> + '_ {
        (0..self.acts.len()).map(|i| ActId(i as u8))
    }

    /// Renders a symbol `σ ∈ 2^P` as a human-readable conjunction.
    pub fn display_props(&self, set: PropSet) -> String {
        let names: Vec<&str> = self
            .props()
            .filter(|p| set.contains(*p))
            .map(|p| self.prop_name(p))
            .collect();
        if names.is_empty() {
            "∅".to_owned()
        } else {
            names.join(" ∧ ")
        }
    }

    /// Renders an action set `a ∈ 2^{P_A}` as a human-readable conjunction.
    pub fn display_acts(&self, set: ActSet) -> String {
        let names: Vec<&str> = self
            .acts()
            .filter(|a| set.contains(*a))
            .map(|a| self.act_name(a))
            .collect();
        if names.is_empty() {
            "ε".to_owned()
        } else {
            names.join(" ∧ ")
        }
    }

    /// Rebuilds the name→id indices after deserialization.
    ///
    /// `serde` skips the lookup maps; call this after deserializing a
    /// `Vocab` if you need name lookups again.
    pub fn rebuild_index(&mut self) {
        self.prop_index = self
            .props
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), PropId(i as u8)))
            .collect();
        self.act_index = self
            .acts
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ActId(i as u8)))
            .collect();
    }
}

impl fmt::Display for Vocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P = {{{}}}, P_A = {{{}}}",
            self.props.join(", "),
            self.acts.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_props() {
        let mut v = Vocab::new();
        let a = v.add_prop("green traffic light").unwrap();
        let b = v.add_prop("pedestrian in front").unwrap();
        assert_ne!(a, b);
        assert_eq!(v.prop("green traffic light").unwrap(), a);
        assert_eq!(v.prop_name(b), "pedestrian in front");
        assert_eq!(v.num_props(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut v = Vocab::new();
        v.add_prop("stop sign").unwrap();
        assert!(matches!(
            v.add_prop("stop sign"),
            Err(AutokitError::DuplicateName(_))
        ));
        // Names are shared across props and actions.
        assert!(matches!(
            v.add_act("stop sign"),
            Err(AutokitError::DuplicateName(_))
        ));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut v = Vocab::new();
        assert!(matches!(v.add_prop(""), Err(AutokitError::InvalidName(_))));
        assert!(matches!(
            v.add_prop("Green Light"),
            Err(AutokitError::InvalidName(_))
        ));
        assert!(matches!(
            v.add_act("go!"),
            Err(AutokitError::InvalidName(_))
        ));
    }

    #[test]
    fn vocab_capacity_enforced() {
        let mut v = Vocab::new();
        for i in 0..MAX_PROPS {
            v.add_prop(&format!("p{i}")).unwrap();
        }
        assert!(matches!(
            v.add_prop("overflow"),
            Err(AutokitError::VocabFull { .. })
        ));
    }

    #[test]
    fn unknown_lookup_fails() {
        let v = Vocab::new();
        assert!(matches!(v.prop("nope"), Err(AutokitError::UnknownName(_))));
        assert!(matches!(v.act("nope"), Err(AutokitError::UnknownName(_))));
    }

    #[test]
    fn display_sets() {
        let mut v = Vocab::new();
        let g = v.add_prop("green").unwrap();
        let r = v.add_prop("red").unwrap();
        let s = v.add_act("stop").unwrap();
        let set = PropSet::empty().with(g).with(r);
        assert_eq!(v.display_props(set), "green ∧ red");
        assert_eq!(v.display_props(PropSet::empty()), "∅");
        assert_eq!(v.display_acts(ActSet::empty().with(s)), "stop");
        assert_eq!(v.display_acts(ActSet::empty()), "ε");
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut v = Vocab::new();
        v.add_prop("green").unwrap();
        v.add_act("stop").unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.prop("green").unwrap(), v.prop("green").unwrap());
        assert_eq!(back.act("stop").unwrap(), v.act("stop").unwrap());
    }
}
