use crate::{ActSet, Controller, CtrlState, ModelState, PropSet, WorldModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A product-automaton state `(p, q) ∈ Q_M × Q` — a world-model state
/// paired with a controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProductState {
    /// The world-model component `p`.
    pub model: ModelState,
    /// The controller component `q`.
    pub ctrl: CtrlState,
}

/// A labeled product transition: `(p, q) → (p', q')` emitting
/// `ψ = λ_M(p) ∪ a ∈ 2^{P ∪ P_A}` (paper, Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductEdge {
    /// Index of the source state in [`Product::states`].
    pub from: usize,
    /// Index of the destination state in [`Product::states`].
    pub to: usize,
    /// Proposition component of the label (`λ_M(p)`).
    pub props: PropSet,
    /// Action component of the label (`a`).
    pub acts: ActSet,
}

/// How to treat product states with no outgoing edges when generating
/// infinite trajectories for LTL model checking.
///
/// A deadlock arises when the controller has no enabled transition under
/// the current observation (e.g. a terminal "task done" state). LTL is
/// interpreted over infinite traces, so a policy is needed:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DeadlockPolicy {
    /// Add a self-loop that keeps re-emitting `λ_M(p)` with the empty
    /// action `ε`. This mirrors NuSMV practice of totalizing the transition
    /// relation and matches the intuition that a finished controller keeps
    /// observing the world while doing nothing. The default.
    #[default]
    Stutter,
    /// Iteratively remove deadlocked states; only maximal infinite
    /// behaviours are checked. May remove every state, in which case every
    /// specification holds vacuously.
    Prune,
}

/// The product automaton `𝔓 = M ⊗ C` (paper, Appendix A).
///
/// Only the part reachable from the initial set
/// `{(p, q₀) | p ∈ Q_M}` is constructed. Labeled trajectories of the
/// product — sequences over `2^{P ∪ P_A}` read off its edges — are exactly
/// the behaviours the model checker verifies against LTL specifications.
///
/// # Example
///
/// ```
/// use autokit::{ActSet, ControllerBuilder, Guard, Product, Vocab, WorldModel, PropSet};
/// let mut v = Vocab::new();
/// let green = v.add_prop("green")?;
/// let go = v.add_act("go")?;
///
/// let mut model = WorldModel::new("light");
/// let g = model.add_state(PropSet::singleton(green));
/// let r = model.add_state(PropSet::empty());
/// model.add_transition(g, r);
/// model.add_transition(r, g);
///
/// let ctrl = ControllerBuilder::new("go on green", 1)
///     .initial(0)
///     .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
///     .transition(0, Guard::always().forbids(green), ActSet::empty(), 0)
///     .build()?;
///
/// let product = Product::build(&model, &ctrl);
/// assert_eq!(product.num_states(), 2);
/// assert_eq!(product.num_edges(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Product {
    states: Vec<ProductState>,
    /// `obs[s] = λ_M(p)` for `states[s] = (p, q)`.
    obs: Vec<PropSet>,
    initial: Vec<usize>,
    edges: Vec<ProductEdge>,
    out_edges: Vec<Vec<usize>>,
}

impl Product {
    /// Constructs the reachable product of a world model and a controller.
    ///
    /// Initial states are `{(p, q₀) | p ∈ Q_M}` — the controller may start
    /// while the environment is in any configuration, which is how the
    /// paper verifies "for all the possible initial states".
    pub fn build(model: &WorldModel, ctrl: &Controller) -> Product {
        let mut index: HashMap<ProductState, usize> = HashMap::new();
        let mut states: Vec<ProductState> = Vec::new();
        let mut obs: Vec<PropSet> = Vec::new();
        let mut initial = Vec::new();
        let mut worklist = Vec::new();

        for p in model.states() {
            let s = ProductState {
                model: p,
                ctrl: ctrl.initial(),
            };
            let id = states.len();
            index.insert(s, id);
            states.push(s);
            obs.push(model.label(p));
            initial.push(id);
            worklist.push(id);
        }

        let mut edges: Vec<ProductEdge> = Vec::new();
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); states.len()];

        while let Some(sid) = worklist.pop() {
            let ProductState { model: p, ctrl: q } = states[sid];
            let sigma = model.label(p);
            // Collect (action, q') pairs enabled under λ_M(p); each pairs
            // with every model successor p'.
            let enabled: Vec<(ActSet, CtrlState)> =
                ctrl.enabled(q, sigma).map(|t| (t.action, t.to)).collect();
            for &(a, q_next) in &enabled {
                for &p_next in model.successors(p) {
                    let target = ProductState {
                        model: p_next,
                        ctrl: q_next,
                    };
                    let tid = *index.entry(target).or_insert_with(|| {
                        let id = states.len();
                        states.push(target);
                        obs.push(model.label(p_next));
                        out_edges.push(Vec::new());
                        worklist.push(id);
                        id
                    });
                    let edge = ProductEdge {
                        from: sid,
                        to: tid,
                        props: sigma,
                        acts: a,
                    };
                    // Non-determinism can propose the same edge twice
                    // (distinct controller transitions with equal action
                    // and target); keep it once.
                    if !out_edges[sid].iter().any(|&e| edges[e] == edge) {
                        out_edges[sid].push(edges.len());
                        edges.push(edge);
                    }
                }
            }
        }

        Product {
            states,
            obs,
            initial,
            edges,
            out_edges,
        }
    }

    /// The observation `λ_M(p)` at product state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn observation(&self, s: usize) -> PropSet {
        self.obs[s]
    }

    /// All reachable product states.
    pub fn states(&self) -> &[ProductState] {
        &self.states
    }

    /// Indices of initial states (into [`Product::states`]).
    pub fn initial(&self) -> &[usize] {
        &self.initial
    }

    /// All edges.
    pub fn edges(&self) -> &[ProductEdge] {
        &self.edges
    }

    /// Indices of edges leaving state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn out_edges(&self, s: usize) -> &[usize] {
        &self.out_edges[s]
    }

    /// Number of reachable states `|Q_𝔓|`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of labeled transitions.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// States with no outgoing edge (deadlocks).
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&s| self.out_edges[s].is_empty())
            .collect()
    }

    /// Converts the edge-labeled product into a state-labeled graph whose
    /// infinite paths emit exactly the product's labeled trajectories.
    ///
    /// Each graph node is a product *edge*; its label is the edge's
    /// `ψ = λ_M(p) ∪ a`; node `e₁ → e₂` iff `e₁.to == e₂.from`. Deadlocks
    /// are handled per `policy`. This is the standard edge-to-state label
    /// transformation used to model-check edge-labeled automata.
    pub fn label_graph(&self, policy: DeadlockPolicy) -> LabelGraph {
        let mut labels: Vec<(PropSet, ActSet)> = Vec::with_capacity(self.edges.len());
        let mut origin: Vec<ProductState> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            labels.push((e.props, e.acts));
            origin.push(self.states[e.from]);
        }
        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            succs.push(self.out_edges[e.to].clone());
        }
        let mut initial: Vec<usize> = self
            .initial
            .iter()
            .flat_map(|&s| self.out_edges[s].iter().copied())
            .collect();
        initial.sort_unstable();
        initial.dedup();

        match policy {
            DeadlockPolicy::Stutter => {
                // A node whose product target is deadlocked gets a stutter
                // successor that re-emits the target's observation with ε
                // forever.
                let mut stutter_of: HashMap<usize, usize> = HashMap::new();
                for (i, edge) in self.edges.iter().enumerate() {
                    let target = edge.to;
                    if self.out_edges[target].is_empty() {
                        let node = *stutter_of.entry(target).or_insert_with(|| {
                            let id = labels.len();
                            let st = self.states[target];
                            // The deadlocked state keeps observing λ_M(p)
                            // while the controller stays silent (ε).
                            labels.push((self.obs[target], ActSet::empty()));
                            origin.push(st);
                            succs.push(vec![id]);
                            id
                        });
                        succs[i].push(node);
                    }
                }
                // Initial deadlocked product states (no outgoing edge at
                // all) contribute no behaviour; they are vacuous.
            }
            DeadlockPolicy::Prune => {
                // Iteratively drop nodes with no successors.
                let n = labels.len();
                let mut alive = vec![true; n];
                let mut changed = true;
                while changed {
                    changed = false;
                    for i in 0..n {
                        if alive[i] && !succs[i].iter().any(|&j| alive[j]) {
                            alive[i] = false;
                            changed = true;
                        }
                    }
                }
                for s in succs.iter_mut() {
                    s.retain(|&j| alive[j]);
                }
                initial.retain(|&i| alive[i]);
                // Dead nodes stay as unreachable husks; they have no
                // successors and are never initial, so the checker ignores
                // them.
            }
        }

        LabelGraph {
            labels,
            origin,
            succs,
            initial,
        }
    }
}

/// A state-labeled graph over `2^{P ∪ P_A}`, the direct input to LTL model
/// checking. Produced by [`Product::label_graph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelGraph {
    /// Node labels `ψ_i = (σ_i, a_i)`.
    pub labels: Vec<(PropSet, ActSet)>,
    /// The product state each node originated from — used to render
    /// counterexamples in the paper's `(p_i, q_i, c_i ∪ a_i)` format.
    pub origin: Vec<ProductState>,
    /// Adjacency list.
    pub succs: Vec<Vec<usize>>,
    /// Initial nodes.
    pub initial: Vec<usize>,
}

impl LabelGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActSet, ControllerBuilder, Guard, Vocab};

    /// Two-phase light (green ↔ ¬green), controller goes on green, waits
    /// otherwise.
    fn simple_setup() -> (WorldModel, Controller) {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        let go = v.add_act("go").unwrap();
        let mut model = WorldModel::new("light");
        let g = model.add_state(PropSet::singleton(green));
        let r = model.add_state(PropSet::empty());
        model.add_transition(g, r);
        model.add_transition(r, g);
        model.add_transition(g, g);
        let ctrl = ControllerBuilder::new("go on green", 1)
            .initial(0)
            .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
            .transition(0, Guard::always().forbids(green), ActSet::empty(), 0)
            .build()
            .unwrap();
        (model, ctrl)
    }

    #[test]
    fn product_reaches_expected_states() {
        let (model, ctrl) = simple_setup();
        let product = Product::build(&model, &ctrl);
        // 2 model states × 1 controller state, all reachable.
        assert_eq!(product.num_states(), 2);
        // g: go-edge to r and to g (2 edges); r: ε-edge to g (1 edge).
        assert_eq!(product.num_edges(), 3);
        assert!(product.deadlocks().is_empty());
    }

    #[test]
    fn initial_pairs_every_model_state_with_q0() {
        let (model, ctrl) = simple_setup();
        let product = Product::build(&model, &ctrl);
        assert_eq!(product.initial().len(), model.num_states());
        for &i in product.initial() {
            assert_eq!(product.states()[i].ctrl, ctrl.initial());
        }
    }

    #[test]
    fn edge_labels_carry_source_observation() {
        let (model, ctrl) = simple_setup();
        let product = Product::build(&model, &ctrl);
        for e in product.edges() {
            let src = product.states()[e.from];
            assert_eq!(e.props, model.label(src.model));
        }
    }

    #[test]
    fn label_graph_paths_mirror_product() {
        let (model, ctrl) = simple_setup();
        let product = Product::build(&model, &ctrl);
        let graph = product.label_graph(DeadlockPolicy::Stutter);
        assert_eq!(graph.num_nodes(), product.num_edges());
        // Every node's successors' origin matches the node's target state.
        for (i, succs) in graph.succs.iter().enumerate() {
            let target = product.edges()[i].to;
            for &j in succs {
                assert_eq!(graph.origin[j], product.states()[product.edges()[j].from]);
                assert_eq!(product.edges()[j].from, target);
            }
        }
    }

    #[test]
    fn deadlock_stutter_adds_self_loop() {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        let go = v.add_act("go").unwrap();
        let mut model = WorldModel::new("light");
        let g = model.add_state(PropSet::singleton(green));
        model.add_transition(g, g);
        // Controller moves to a terminal state and stops.
        let ctrl = ControllerBuilder::new("one shot", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .build()
            .unwrap();
        let product = Product::build(&model, &ctrl);
        assert_eq!(product.deadlocks().len(), 1);
        let graph = product.label_graph(DeadlockPolicy::Stutter);
        // One real edge plus one stutter node.
        assert_eq!(graph.num_nodes(), 2);
        let stutter = 1;
        assert_eq!(graph.succs[stutter], vec![stutter]);
        assert!(graph.labels[stutter].1.is_empty());
    }

    #[test]
    fn deadlock_prune_removes_finite_behaviours() {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        let go = v.add_act("go").unwrap();
        let mut model = WorldModel::new("light");
        let g = model.add_state(PropSet::singleton(green));
        model.add_transition(g, g);
        let ctrl = ControllerBuilder::new("one shot", 2)
            .initial(0)
            .transition(0, Guard::always(), ActSet::singleton(go), 1)
            .build()
            .unwrap();
        let product = Product::build(&model, &ctrl);
        let graph = product.label_graph(DeadlockPolicy::Prune);
        assert!(graph.initial.is_empty());
    }

    mod properties {
        use super::*;
        use crate::Guard;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        struct RandomSetup {
            model: WorldModel,
            ctrl: Controller,
        }

        fn arb_setup() -> impl Strategy<Value = RandomSetup> {
            let model_strategy = (
                proptest::collection::vec(0u32..16, 1..5), // state labels
                proptest::collection::vec(any::<bool>(), 0..25), // adjacency bits
            );
            let ctrl_strategy = (
                1usize..4, // number of states
                proptest::collection::vec(
                    (0usize..4, 0u32..16, 0u32..16, 0u32..4, 0usize..4),
                    0..8,
                ), // (from, pos, neg, action, to)
            );
            (model_strategy, ctrl_strategy).prop_map(|((labels, adj), (nq, transitions))| {
                let mut model = WorldModel::new("random");
                let states: Vec<_> = labels
                    .iter()
                    .map(|&b| model.add_state(PropSet::from_bits(b)))
                    .collect();
                let n = states.len();
                for (k, &bit) in adj.iter().enumerate() {
                    if bit {
                        model.add_transition(states[k % n], states[(k / n) % n]);
                    }
                }
                let mut builder = ControllerBuilder::new("random", nq).initial(0);
                for (from, pos, neg, act, to) in transitions {
                    builder = builder.transition(
                        from % nq,
                        Guard {
                            pos: PropSet::from_bits(pos),
                            neg: PropSet::from_bits(neg),
                        },
                        ActSet::from_bits(act),
                        to % nq,
                    );
                }
                RandomSetup {
                    model,
                    ctrl: builder.build().expect("indices are in range"),
                }
            })
        }

        proptest! {
            /// Every product edge is justified by a controller transition
            /// and a model transition, and carries the source observation.
            #[test]
            fn edges_are_justified(setup in arb_setup()) {
                let product = Product::build(&setup.model, &setup.ctrl);
                for e in product.edges() {
                    let src = product.states()[e.from];
                    let dst = product.states()[e.to];
                    let obs = setup.model.label(src.model);
                    prop_assert_eq!(e.props, obs);
                    prop_assert_eq!(product.observation(e.from), obs);
                    prop_assert!(setup.model.has_transition(src.model, dst.model));
                    let justified = setup.ctrl.enabled(src.ctrl, obs).any(|t| {
                        t.action == e.acts && t.to == dst.ctrl
                    });
                    prop_assert!(justified, "unjustified edge {e:?}");
                }
            }

            /// Initial states pair every model state with q₀, and every
            /// product state is reachable from the initial set.
            #[test]
            fn reachability_and_initials(setup in arb_setup()) {
                let product = Product::build(&setup.model, &setup.ctrl);
                prop_assert_eq!(product.initial().len(), setup.model.num_states());
                for &i in product.initial() {
                    prop_assert_eq!(product.states()[i].ctrl, setup.ctrl.initial());
                }
                // BFS over edges must reach every state.
                let mut seen = vec![false; product.num_states()];
                let mut queue: Vec<usize> = product.initial().to_vec();
                for &s in &queue {
                    seen[s] = true;
                }
                while let Some(s) = queue.pop() {
                    for &eid in product.out_edges(s) {
                        let t = product.edges()[eid].to;
                        if !seen[t] {
                            seen[t] = true;
                            queue.push(t);
                        }
                    }
                }
                prop_assert!(seen.iter().all(|&s| s), "unreachable product state");
            }

            /// The label graph's paths are exactly the product's edge
            /// walks: successors of a node continue from its target.
            #[test]
            fn label_graph_consistency(setup in arb_setup()) {
                let product = Product::build(&setup.model, &setup.ctrl);
                let graph = product.label_graph(DeadlockPolicy::Stutter);
                for (i, e) in product.edges().iter().enumerate() {
                    prop_assert_eq!(graph.labels[i], (e.props, e.acts));
                    for &j in &graph.succs[i] {
                        if j < product.num_edges() {
                            prop_assert_eq!(product.edges()[j].from, e.to);
                        } else {
                            // Stutter node: self-looping, ε action.
                            prop_assert!(graph.succs[j].contains(&j));
                            prop_assert!(graph.labels[j].1.is_empty());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let mut v = Vocab::new();
        let green = v.add_prop("green").unwrap();
        let mut model = WorldModel::new("m");
        let s = model.add_state(PropSet::singleton(green));
        model.add_transition(s, s);
        // Two identical transitions in the controller.
        let ctrl = ControllerBuilder::new("dup", 1)
            .initial(0)
            .transition(0, Guard::always(), ActSet::empty(), 0)
            .transition(0, Guard::always(), ActSet::empty(), 0)
            .build()
            .unwrap();
        let product = Product::build(&model, &ctrl);
        assert_eq!(product.num_edges(), 1);
    }
}
