//! # autokit — automaton toolkit for verifiable controller synthesis
//!
//! This crate provides the automaton-based formalisms from *"Fine-Tuning
//! Language Models Using Formal Methods Feedback"* (MLSys 2024), Section 3
//! and Appendix A:
//!
//! * [`Vocab`] — an interned vocabulary of atomic propositions `P`
//!   (environment observations) and action propositions `P_A` (controller
//!   outputs).
//! * [`PropSet`] / [`ActSet`] — symbols `σ ∈ 2^P` and `a ∈ 2^{P_A}`,
//!   represented as bitsets.
//! * [`WorldModel`] — a transition system `M = ⟨Γ_M, Q_M, δ_M, λ_M⟩`
//!   encoding the static and dynamic information of a system or
//!   environment, built either directly or via the paper's Algorithm 1
//!   ([`WorldModelBuilder`]).
//! * [`Controller`] — a finite-state automaton
//!   `A = ⟨Σ, A, Q, q₀, δ⟩` mapping observed symbols to actions, with
//!   guards that are conjunctions of literals over `P` ([`Guard`]).
//! * [`Product`] — the product automaton `𝔓 = M ⊗ C` of Appendix A, whose
//!   labeled trajectories over `2^{P ∪ P_A}` are the objects that get
//!   model-checked against LTL specifications.
//! * [`presets`] — the autonomous-driving world models from the paper's
//!   Figures 5, 6, 15, 16 and 17, plus the combined "universal" model.
//!
//! The crate is deliberately free of any verification logic: the `ltlcheck`
//! crate consumes [`Product`] structures and checks them against linear
//! temporal logic specifications.
//!
//! ## Example
//!
//! ```
//! use autokit::{Vocab, WorldModelBuilder, PropSet};
//!
//! // The traffic-light example from the paper's Section 4.1: the light
//! // cycles green → yellow → red → green.
//! let mut vocab = Vocab::new();
//! let green = vocab.add_prop("green").unwrap();
//! let yellow = vocab.add_prop("yellow").unwrap();
//! let red = vocab.add_prop("red").unwrap();
//!
//! let model = WorldModelBuilder::new(&vocab)
//!     .allow_transitions(|from: PropSet, to: PropSet| {
//!         (from.contains(green) && to.contains(yellow))
//!             || (from.contains(yellow) && to.contains(red))
//!             || (from.contains(red) && to.contains(green))
//!     })
//!     .keep_singletons_only()
//!     .build();
//!
//! // Algorithm 1 prunes the 2^3 candidate states down to the three
//! // reachable singleton labels.
//! assert_eq!(model.num_states(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod dot;
mod error;
mod minimize;
pub mod presets;
mod product;
mod sets;
mod trace;
mod vocab;
mod world;

pub use controller::{Controller, ControllerBuilder, CtrlState, CtrlTransition, Guard};
pub use dot::ToDot;
pub use error::AutokitError;
pub use product::{DeadlockPolicy, LabelGraph, Product, ProductEdge, ProductState};
pub use sets::{ActSet, PropSet};
pub use trace::{Step, Trace};
pub use vocab::{ActId, PropId, Vocab, MAX_ACTS, MAX_PROPS};
pub use world::{ModelState, WorldModel, WorldModelBuilder};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AutokitError>;
