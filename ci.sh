#!/usr/bin/env bash
# CI gate: formatting, lints, docs, tests, the speclint static-analysis
# pass over the shipped rule books, controllers and step lists, the
# certkit certification + explicit-vs-symbolic differential suite, and
# an instrumented bench smoke run validated against the obskit.bench.v1
# report schema (metrics_check).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> speclint --deny-warnings"
cargo run -q -p speclint -- --deny-warnings

echo "==> certkit gate (certification + differential suite)"
cargo run -q -p certkit --release

echo "==> obskit smoke gate (instrumented bench run + schema check)"
smoke_report="$(mktemp -t BENCH_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_report"' EXIT
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --metrics-out "$smoke_report" > /dev/null
cargo run -q --release -p bench --bin metrics_check -- "$smoke_report" \
    --require pipeline.pairs_formed,pipeline.responses_scored,ltlcheck.checks,ltlcheck.product_states,pretrain.tokens,dpo.pairs_trained \
    --require-span pipeline.run,pipeline.pretrain,pipeline.collect,pipeline.sample,pipeline.parse,pipeline.verify,pipeline.rank,pipeline.train,pipeline.eval

echo "ci: all gates passed"
