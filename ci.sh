#!/usr/bin/env bash
# CI gate: formatting, lints, tests, and the speclint static-analysis
# pass over the shipped rule books, controllers and step lists.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> speclint --deny-warnings"
cargo run -q -p speclint -- --deny-warnings

echo "ci: all gates passed"
