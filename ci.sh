#!/usr/bin/env bash
# CI gate: formatting, lints, docs, tests, the speclint static-analysis
# pass over the shipped rule books, controllers and step lists, and the
# certkit certification + explicit-vs-symbolic differential suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -q"
cargo test -q

echo "==> speclint --deny-warnings"
cargo run -q -p speclint -- --deny-warnings

echo "==> certkit gate (certification + differential suite)"
cargo run -q -p certkit --release

echo "ci: all gates passed"
