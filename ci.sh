#!/usr/bin/env bash
# CI gate: formatting, lints, docs, tests, the speclint static-analysis
# pass over the shipped rule books, controllers and step lists, the
# specsem semantic analysis of the rule books under their world models,
# the unsafe-code audit, the conckit concurrency model-checking gate
# (exhaustive interleaving exploration of the parkit pool/deque and the
# sharded verdict cache, plus a miri pass when the interpreter is
# installed), the certkit certification + explicit-vs-symbolic
# differential suite (including the scaled drivesim/warehouse models
# under a time budget), the symbolic backend gate (a fast
# backend_compare --sweep whose symbolic.* counters are validated by
# metrics_check and diffed exactly against the committed
# results/BENCH_backend.json baseline), an instrumented bench smoke
# run (allocation
# tracking on) validated against the obskit.bench.v2 report schema
# (metrics_check), byte-equality gates proving the performance and
# gating knobs (--threads, DPO ref cache, verdict-cache capacity,
# semantic pre-flight, allocation tracking, pooled backward) never
# change artifacts, the kernel gate (fast-math tolerance envelope and
# pooled-backward bit-equality over real sequence graphs), and
# a noise-aware perf-regression gate (bench_diff) that diffs a fresh
# fast headline run against the committed baseline under
# results/PERF_BUDGETS.json — including a seeded-regression self-test
# proving the gate really fails when one span slows down.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> model-feature tests (parkit under conckit's exploring scheduler)"
cargo clippy -q -p conckit -p parkit -p bench --all-targets \
    --features bench/model -- -D warnings
cargo test -q -p conckit -p parkit --features conckit/model,parkit/model

echo "==> miri gate (parkit + conckit under the interpreter)"
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p parkit -p conckit
else
    echo "miri gate: SKIPPED (cargo miri not installed)"
fi

echo "==> speclint --deny-warnings"
cargo run -q -p speclint -- --deny-warnings

echo "==> speclint --semantic --deny-warnings (SL3xx over shipped books)"
cargo run -q --release -p speclint -- --semantic --deny-warnings

echo "==> unsafe-code audit (every unsafe site carries a SAFETY comment)"
cargo run -q --release -p bench --bin unsafe_audit -- --no-obs

echo "==> conckit exploration gate (model-checked pool/deque/cache interleavings)"
conc_report="$(mktemp -t BENCH_conc.XXXXXX.json)"
trap 'rm -f "$conc_report"' EXIT
cargo run -q --release -p bench --features model --bin conc_check -- \
    --metrics-out "$conc_report"
cargo run -q --release -p bench --bin metrics_check -- "$conc_report" \
    --require conckit.schedules,conckit.steps,conckit.violations,conckit.max_depth

echo "==> certkit gate (certification + differential suite, incl. scaled models)"
cargo run -q -p certkit --release

echo "==> symbolic backend gate (fast sweep, symbolic.* metrics, counter diff vs baseline)"
sweep_report="$(mktemp -t BENCH_backend.XXXXXX.json)"
trap 'rm -f "$conc_report" "$sweep_report"' EXIT
cargo run -q --release -p bench --bin backend_compare -- \
    --sweep --fast --quiet --metrics-out "$sweep_report" > /dev/null
cargo run -q --release -p bench --bin metrics_check -- "$sweep_report" \
    --require symbolic.checks,symbolic.cache_hits,symbolic.cache_lookups,symbolic.el_iterations,symbolic.peak_nodes,symbolic.reach_rings,backend.sweep_scales,ltlcheck.checks
cargo run -q --release -p bench --bin bench_diff -- \
    results/BENCH_backend.json "$sweep_report" \
    --budgets results/PERF_BUDGETS.json

echo "==> obskit smoke gate (instrumented 2-thread bench run, alloc tracking on)"
smoke_report="$(mktemp -t BENCH_smoke.XXXXXX.json)"
smoke_art1="$(mktemp -t headline_t1.XXXXXX.json)"
smoke_art2="$(mktemp -t headline_t2.XXXXXX.json)"
smoke_art3="$(mktemp -t headline_norefcache.XXXXXX.json)"
trap 'rm -f "$smoke_report" "$smoke_art1" "$smoke_art2" "$smoke_art3" "$conc_report" "$sweep_report"' EXIT
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --threads 2 --alloc --metrics-out "$smoke_report" \
    --artifacts-out "$smoke_art2" > /dev/null
cargo run -q --release -p bench --bin metrics_check -- "$smoke_report" \
    --require pipeline.pairs_formed,pipeline.responses_scored,ltlcheck.checks,ltlcheck.product_states,pretrain.tokens,dpo.pairs_trained,pool.tasks,pool.steals,verify.cache_hits,verify.cache_misses,verify.cache_entries,verify.cache_evictions,verify.cache_hit_rate,dpo.ref_cache_hits,dpo.tokens_per_sec,tape.nodes,tape.grad_buffer_reuses,speclint.semantic_rules,speclint.semantic_checks,speclint.semantic_errors,speclint.semantic_notes,alloc.allocs,alloc.bytes_allocated,alloc.bytes_freed,alloc.frees,alloc.current_bytes,alloc.peak_bytes \
    --require-span pipeline.run,pipeline.pretrain,pipeline.collect,pipeline.sample,pipeline.parse,pipeline.verify,pipeline.rank,pipeline.train,pipeline.eval,pipeline.score_batch,pipeline.score,dpo.ref,dpo.epoch,dpo.forward,dpo.backward

# smoke_art2 was produced at --threads 2 with --alloc; smoke_art1 is
# --threads 1 --no-obs, so this one cmp also proves the tracking
# allocator and recorder never leak into artifacts.
echo "==> parallel determinism gate (headline artifacts, --threads 1 vs 2, alloc on vs off)"
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --no-obs --threads 1 --artifacts-out "$smoke_art1" > /dev/null
cmp "$smoke_art1" "$smoke_art2"

echo "==> ref-cache exactness gate (headline artifacts, cache on vs off)"
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --no-obs --threads 1 --no-ref-cache \
    --artifacts-out "$smoke_art3" > /dev/null
cmp "$smoke_art1" "$smoke_art3"

echo "==> semantic pre-flight purity gate (gate on vs off, identical artifacts)"
smoke_art4="$(mktemp -t headline_nosem.XXXXXX.json)"
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --no-obs --threads 1 --no-semantic-preflight \
    --artifacts-out "$smoke_art4" > /dev/null
cmp "$smoke_art1" "$smoke_art4"

echo "==> pooled-backward determinism gate (headline artifacts, serial vs pooled backward)"
smoke_art5="$(mktemp -t headline_poolbw.XXXXXX.json)"
trap 'rm -f "$smoke_report" "$smoke_art1" "$smoke_art2" "$smoke_art3" "$smoke_art4" "$smoke_art5" "$conc_report" "$sweep_report"' EXIT
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --no-obs --threads 2 --pool-backward \
    --artifacts-out "$smoke_art5" > /dev/null
cmp "$smoke_art1" "$smoke_art5"

echo "==> kernel gate (fast-math tolerance + pooled backward bit-equality, DESIGN.md §13)"
cargo run -q --release -p bench --bin kernel_gate -- --no-obs

echo "==> perf budget gate (bench_diff vs committed fast-headline baseline)"
perf_report="$(mktemp -t BENCH_perf.XXXXXX.json)"
trap 'rm -f "$smoke_report" "$smoke_art1" "$smoke_art2" "$smoke_art3" "$smoke_art4" "$smoke_art5" "$conc_report" "$sweep_report" "$perf_report"' EXIT
cargo run -q --release -p bench --bin headline -- \
    --fast --quiet --threads 1 --alloc --metrics-out "$perf_report" > /dev/null
cargo run -q --release -p bench --bin bench_diff -- \
    results/BENCH_headline_fast.json "$perf_report" \
    --budgets results/PERF_BUDGETS.json

# Self-test against the baseline *itself* so the verdicts are
# deterministic: identical reports must pass, and the same pair with a
# seeded +25% pipeline.train slowdown must fail naming the span —
# machine noise in the fresh candidate above cannot mask the seed here.
# (The seed moved off dpo.backward when the §13 kernels shrank that
# span below the gate's min-share floor in the fast baseline.)
echo "==> perf gate self-test (identical reports pass, seeded +25% regression fails)"
seeded_out="$(mktemp -t bench_diff_seeded.XXXXXX.txt)"
trap 'rm -f "$smoke_report" "$smoke_art1" "$smoke_art2" "$smoke_art3" "$smoke_art4" "$smoke_art5" "$conc_report" "$sweep_report" "$perf_report" "$seeded_out"' EXIT
cargo run -q --release -p bench --bin bench_diff -- \
    results/BENCH_headline_fast.json results/BENCH_headline_fast.json \
    --budgets results/PERF_BUDGETS.json > /dev/null
if cargo run -q --release -p bench --bin bench_diff -- \
    results/BENCH_headline_fast.json results/BENCH_headline_fast.json \
    --budgets results/PERF_BUDGETS.json \
    --seed-regression pipeline.train=1.25 > "$seeded_out"; then
    echo "perf gate self-test FAILED: seeded regression was not detected"
    cat "$seeded_out"
    exit 1
fi
grep -q "pipeline.train" "$seeded_out"

echo "ci: all gates passed"
