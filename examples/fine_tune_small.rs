//! A miniature end-to-end DPO-AF run: pretrain the small language model,
//! collect verification-ranked preferences, fine-tune with DPO, and
//! print the before/after specification-satisfaction scores.
//!
//! This is the full pipeline at toy scale (≈1 minute in release mode).
//! The `bench` crate's `fig9`/`headline` binaries run the paper-scale
//! configuration.
//!
//! Run with: `cargo run --release --example fine_tune_small`

#![allow(clippy::field_reassign_with_default)] // ALLOW: config structs are built by field reassignment for readability.
                                               // mutating a Default, which reads better than giant struct-update literals

use dpo_af::pipeline::{DpoAf, PipelineConfig};
use tinylm::SampleOptions;

fn main() {
    let mut cfg = PipelineConfig::default();
    cfg.corpus_size = 400;
    cfg.pretrain.epochs = 4;
    cfg.train.epochs = 25;
    cfg.iterations = 2;
    cfg.checkpoint_every = 10;
    cfg.eval_samples = 3;

    let pipeline = DpoAf::new(cfg);
    println!("pretraining + fine-tuning (this takes a moment) …\n");
    let artifacts = pipeline.run();

    println!("preference pairs collected: {}", artifacts.dataset_size);
    println!("\nspecifications satisfied (of 15) at each checkpoint:");
    for e in &artifacts.checkpoint_evals {
        println!(
            "  epoch {:>3}: train {:>5.2}  validation {:>5.2}",
            e.epoch, e.train_score, e.val_score
        );
    }

    // Show an actual response from each model.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let opts = SampleOptions {
        temperature: 0.6,
        max_len: 60,
        ..SampleOptions::default()
    };
    let task = &pipeline.bundle.tasks[0];
    let before = artifacts
        .reference
        .sample(task.id, &mut rng, opts)
        .expect("task exists");
    let after = artifacts
        .policy
        .sample(task.id, &mut rng, opts)
        .expect("task exists");
    println!("\ntask: {}", task.prompt);
    println!("before: {}", pipeline.bundle.decode(&before));
    println!("after:  {}", pipeline.bundle.decode(&after));
}
