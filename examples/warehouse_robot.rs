//! DPO-AF beyond driving: the warehouse-robot domain.
//!
//! The paper notes its method's "applicability is not limited to this
//! domain". This example re-instantiates the whole recipe — vocabulary,
//! world model, rule book, lexicon, templates, verification feedback and
//! DPO — for a warehouse robot, using the same substrate crates and no
//! driving-specific code.
//!
//! Run with: `cargo run --release --example warehouse_robot`

use warehouse::{
    run_mini, score_warehouse_response, warehouse_specs, MiniConfig, WarehouseDomain,
    WarehouseStyle,
};

fn main() {
    let domain = WarehouseDomain::new();

    println!("rule book ({} rules):", warehouse_specs(&domain).len());
    for s in warehouse_specs(&domain) {
        println!("  {:>4}: {}", s.name, s.description);
    }

    println!("\nverification feedback on template responses (task: pick from shelf):");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let task = &domain.tasks[0];
    for style in WarehouseStyle::all() {
        let text = domain.render(task, style, &mut rng);
        let score = score_warehouse_response(&domain, task, &text);
        println!("  {style:?} ({score}/8): {text}");
    }

    println!("\nrunning the mini DPO-AF loop (pretrain → verify-rank → DPO) …");
    let outcome = run_mini(MiniConfig::default());
    println!(
        "  before fine-tuning: {:.2}/8 rules ({:.0}%)",
        outcome.before,
        outcome.before / 8.0 * 100.0
    );
    println!(
        "  after  fine-tuning: {:.2}/8 rules ({:.0}%)   ({} preference pairs)",
        outcome.after,
        outcome.after / 8.0 * 100.0,
        outcome.pairs
    );
    println!("\n  task-0 response before: {}", outcome.sample_before);
    println!("  task-0 response after:  {}", outcome.sample_after);
}
