//! Quickstart: build a world model and a controller, verify the
//! controller against temporal-logic rules, and inspect a counterexample.
//!
//! Run with: `cargo run --example quickstart`

use autokit::{ActSet, ControllerBuilder, Guard, PropSet, Vocab, WorldModel};
use ltlcheck::{parse, verify, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A vocabulary: what the vehicle can observe and do.
    let mut vocab = Vocab::new();
    let green = vocab.add_prop("green traffic light")?;
    let ped = vocab.add_prop("pedestrian in front")?;
    let go = vocab.add_act("go straight")?;
    let stop = vocab.add_act("stop")?;

    // 2. A world model: the light alternates, pedestrians come and go.
    let mut model = WorldModel::new("crossing");
    let mut states = Vec::new();
    for bits in 0..4u32 {
        let mut label = PropSet::empty();
        if bits & 1 != 0 {
            label.insert(green);
        }
        if bits & 2 != 0 {
            label.insert(ped);
        }
        states.push(model.add_state(label));
    }
    for &a in &states {
        for &b in &states {
            model.add_transition(a, b); // fully non-deterministic environment
        }
    }

    // 3. Two controllers: a careful one and a hasty one.
    let careful = ControllerBuilder::new("careful", 1)
        .initial(0)
        .transition(
            0,
            Guard::always().requires(green).forbids(ped),
            ActSet::singleton(go),
            0,
        )
        .transition(
            0,
            Guard::always().forbids(green),
            ActSet::singleton(stop),
            0,
        )
        .transition(0, Guard::always().requires(ped), ActSet::singleton(stop), 0)
        .build()?;
    let hasty = ControllerBuilder::new("hasty", 1)
        .initial(0)
        .transition(0, Guard::always().requires(green), ActSet::singleton(go), 0)
        .transition(
            0,
            Guard::always().forbids(green),
            ActSet::singleton(stop),
            0,
        )
        .build()?;

    // 4. A safety rule: never drive into a pedestrian.
    let rule = parse("G(\"go straight\" -> !\"pedestrian in front\")", &vocab)?;

    for ctrl in [&careful, &hasty] {
        match verify(&model, ctrl, &rule) {
            Verdict::Holds => println!("{}: rule holds", ctrl.name()),
            Verdict::Fails(cex) => {
                println!("{}: rule VIOLATED. Counterexample:", ctrl.name());
                println!("{}", cex.display(&vocab));
            }
        }
    }
    Ok(())
}
