//! From natural language to a verified controller: align a step list
//! against the driving lexicon, compile it with GLM2FSA, and check it
//! against the paper's 15 driving rules — the automated-feedback core of
//! DPO-AF.
//!
//! Run with: `cargo run --example verify_language_model_response`

use autokit::ToDot;
use dpo_af::domain::DomainBundle;
use dpo_af::feedback::score_response;

fn main() {
    let bundle = DomainBundle::new();
    let task = &bundle.tasks[0]; // "turn right at the traffic light"

    // A response a language model might produce, with paraphrases the
    // alignment stage must canonicalize.
    let response = "Watch for the green light ; \
                    if the green light is on, check for oncoming traffic and the right side pedestrian ; \
                    if no car approaching from the left and no pedestrian on the right, make a right turn .";

    println!("task:     {}", task.prompt);
    println!("response: {response}\n");

    println!("aligned:  {}\n", bundle.lexicon.align(response));

    let scored = score_response(&bundle, task, response);
    match (&scored.controller, &scored.report) {
        (Some(ctrl), Some(report)) => {
            println!("synthesized controller ({} states):\n", ctrl.num_states());
            println!("{}", ctrl.to_dot(&bundle.driving.vocab));
            println!(
                "verification: {}/15 specifications satisfied; failed: {:?}",
                report.num_satisfied(),
                report.failed()
            );
        }
        _ => println!("response failed to align — it would rank last as DPO feedback"),
    }
}
