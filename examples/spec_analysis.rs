//! Rule-book analysis: satisfiability, equivalences and vacuity of the
//! paper's 15 driving specifications.
//!
//! Run with: `cargo run --example spec_analysis`

use autokit::{presets::DrivingDomain, ActSet, ControllerBuilder, DeadlockPolicy, Guard, Product};
use ltlcheck::analysis::{equivalent, satisfiable, vacuous_pass, Vacuity};
use ltlcheck::specs::driving_specs;
use ltlcheck::{parse, Ltl};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = DrivingDomain::new();
    let specs = driving_specs(&d);

    println!("1. All 15 rules are satisfiable (none condemns every controller):");
    for s in &specs {
        assert!(satisfiable(&s.formula));
    }
    println!("   ✓\n");

    println!("2. The spec builder and the parser agree — Φ₃ written both ways:");
    let built = &specs[2].formula;
    let parsed = parse("G(!\"green traffic light\" -> !\"go straight\")", &d.vocab)?;
    assert!(equivalent(built, &parsed));
    println!("   ✓ equivalent\n");

    println!("3. Classic temporal equivalences hold in the engine:");
    let a = Ltl::prop(d.ped_front);
    assert!(equivalent(
        &Ltl::eventually(a.clone()),
        &Ltl::not(Ltl::always(Ltl::not(a.clone())))
    ));
    println!("   ✓ ◇a ≡ ¬□¬a\n");

    println!("4. Vacuity: which rules constrain a wide-median crossing at all?");
    // A maximally permissive controller in the wide-median scenario.
    let mut builder = ControllerBuilder::new("free", 1).initial(0);
    for act in [d.stop, d.turn_left, d.turn_right, d.go_straight] {
        builder = builder.transition(0, Guard::always(), ActSet::singleton(act), 0);
    }
    let free = builder.build()?;
    let model = d.wide_median_model();
    let graph = Product::build(&model, &free).label_graph(DeadlockPolicy::Stutter);
    for s in &specs {
        match vacuous_pass(&graph, &s.formula) {
            Some(Vacuity::UnreachableAntecedent(ant)) => println!(
                "   {:>7}: vacuous — antecedent `{}` never occurs here",
                s.name,
                ant.to_string(&d.vocab)
            ),
            Some(Vacuity::Tautology) => println!("   {:>7}: tautology", s.name),
            None => {}
        }
    }
    println!("\n(rules not listed above genuinely constrain this scenario)");
    Ok(())
}
