//! Drive a multi-leg commute with synthesized controllers: the
//! operational composition of the paper's transfer claim (§5.3) — each
//! intersection on a route is handled by the controller synthesized for
//! that situation, and the mission either completes safely or the log
//! shows exactly which leg went wrong.
//!
//! Run with: `cargo run --example commute`

use autokit::Controller;
use dpo_af::domain::{render_response, DomainBundle, Style};
use dpo_af::feedback::fsa_options;
use drivesim::{drive_route, Route, ScenarioConfig};
use glm2fsa::{synthesize, with_default_action};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn leg_controller(bundle: &DomainBundle, style: Style, leg: usize, rng: &mut StdRng) -> Controller {
    // Pick the task matching the leg's scenario and maneuver.
    let d = &bundle.driving;
    let route = Route::commute(d);
    let target = &route.legs[leg];
    let task = bundle
        .tasks
        .iter()
        .find(|t| t.scenario == target.scenario && target.completes_on.contains(t.action))
        .expect("every commute leg has a matching task");
    let text = render_response(d, task, style, rng);
    let steps = DomainBundle::split_steps(&text);
    let ctrl = synthesize(&task.prompt, &steps, &bundle.lexicon, fsa_options(d))
        .expect("careful/hasty templates align");
    with_default_action(&ctrl, d.stop)
}

fn main() {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let route = Route::commute(d);
    let mut rng = StdRng::seed_from_u64(11);

    for style in [Style::Careful, Style::Hasty] {
        let controllers: Vec<Controller> = (0..route.legs.len())
            .map(|leg| leg_controller(&bundle, style, leg, &mut rng))
            .collect();
        let mut episodes_completed = 0;
        let mut total_incidents = 0;
        let episodes = 30;
        for seed in 0..episodes {
            let mut ep_rng = StdRng::seed_from_u64(1000 + seed);
            let outcome = drive_route(
                &route,
                &controllers,
                d,
                ScenarioConfig::default(),
                &mut ep_rng,
                80,
            );
            if outcome.completed {
                episodes_completed += 1;
            }
            total_incidents += outcome.incidents.len();
        }
        println!(
            "{style:?} controllers: {episodes_completed}/{episodes} commutes completed, \
             {total_incidents} incidents"
        );
    }
    println!(
        "\ncareful (verification-preferred) controllers complete the commute with far\n\
         fewer incidents — the operational payoff of the DPO-AF feedback signal."
    );
}
