//! Exports the demonstration controllers as NuSMV modules plus the batch
//! check script — the Appendix D artifacts — so the reproduction's
//! verdicts can be cross-checked against a real NuSMV installation.
//!
//! Run with: `cargo run --example smv_export`

use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::smv;
use ltlcheck::specs::driving_specs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let specs: Vec<(String, ltlcheck::Ltl)> = driving_specs(d)
        .into_iter()
        .map(|s| (s.name, s.formula))
        .collect();

    for (name, steps) in [
        ("turn_right_before_finetune", &RIGHT_TURN_BEFORE[..]),
        ("turn_right_after_finetune", &RIGHT_TURN_AFTER[..]),
    ] {
        let ctrl = synthesize(name, steps, &bundle.lexicon, FsaOptions::default())?;
        let ctrl = with_default_action(&ctrl, d.stop);
        println!("{}", smv::render_module(name, &ctrl, &d.vocab, &specs));
    }

    let spec_names: Vec<String> = specs.iter().map(|(n, _)| n.clone()).collect();
    println!("-- batch script --");
    println!(
        "{}",
        smv::render_check_script("right_turn.smv", &spec_names)
    );
    Ok(())
}
