//! Empirical evaluation: run synthesized controllers in the driving
//! simulator, monitor the traces against the specifications (LTLf), and
//! report incidents — the paper's Carla-based evaluation path.
//!
//! Run with: `cargo run --example drive_simulation`

use dpo_af::domain::DomainBundle;
use dpo_af::experiments::demo::{RIGHT_TURN_AFTER, RIGHT_TURN_BEFORE};
use drivesim::{detect_incidents, ground_many, Scenario, ScenarioConfig, ScenarioKind};
use glm2fsa::{synthesize, with_default_action, FsaOptions};
use ltlcheck::specs::headline_specs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle = DomainBundle::new();
    let d = &bundle.driving;
    let mut rng = StdRng::seed_from_u64(42);

    for (label, steps) in [
        ("before fine-tuning", &RIGHT_TURN_BEFORE[..]),
        ("after fine-tuning", &RIGHT_TURN_AFTER[..]),
    ] {
        let ctrl = synthesize("turn right", steps, &bundle.lexicon, FsaOptions::default())?;
        let ctrl = with_default_action(&ctrl, d.stop);

        let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
        let traces = ground_many(&ctrl, &mut scenario, d, &mut rng, 60, 50);

        println!("== right-turn controller, {label}");
        for spec in headline_specs(d) {
            let rate = ltlcheck::finite::satisfaction_rate(traces.iter(), &spec.formula);
            println!("  {:>7}  P = {rate:.2}   ({})", spec.name, spec.description);
        }
        let incidents: usize = traces.iter().map(|t| detect_incidents(t, d).len()).sum();
        println!(
            "  incidents across {} episodes: {incidents}\n",
            traces.len()
        );
    }
    println!("(one 60-tick episode of the first controller, for flavour:)");
    let ctrl = synthesize(
        "turn right",
        &RIGHT_TURN_BEFORE,
        &bundle.lexicon,
        FsaOptions::default(),
    )?;
    let ctrl = with_default_action(&ctrl, d.stop);
    let mut scenario = Scenario::new(ScenarioKind::TrafficLight, ScenarioConfig::default());
    let trace = drivesim::ground(&ctrl, &mut scenario, d, &mut rng, 12);
    print!("{}", trace.display(&d.vocab));
    Ok(())
}
