//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde: a self-describing [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits mapping types to and from it, and derive macros
//! (re-exported from the companion `serde_derive` stub) covering the
//! shapes this workspace uses — named structs, tuple structs, and enums
//! with unit, tuple and struct variants, plus the `#[serde(skip)]` field
//! attribute. The `serde_json` stub renders [`Value`] as JSON text.
//!
//! The encoding follows serde's externally-tagged conventions, so the
//! JSON produced is familiar, but cross-version compatibility with real
//! serde output is not a goal — only self-round-tripping is.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// The self-describing intermediate representation every serializable
/// type maps into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`, or any non-negative
    /// integer at parse time.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a map or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a sequence element by index.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a sequence or the index is out
    /// of range.
    pub fn element(&self, idx: usize) -> Result<&Value, Error> {
        match self {
            Value::Seq(items) => items
                .get(idx)
                .ok_or_else(|| Error::new(format!("missing tuple element {idx}"))),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// The single `(tag, payload)` entry of an externally-tagged enum
    /// value.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a one-entry map.
    pub fn enum_entry(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(Error::new(format!(
                "expected externally tagged enum value, found {}",
                other.kind()
            ))),
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_i128(&self) -> Option<i128> {
        match *self {
            Value::Int(i) => Some(i as i128),
            Value::UInt(u) => Some(u as i128),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i128),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can map themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the intermediate representation.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value from the intermediate representation.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(unused_comparisons)]
            fn to_value(&self) -> Value {
                if *self as i128 >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = v
                    .as_i128()
                    .ok_or_else(|| Error::new(format!(
                        "expected integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // An f32 widened to f64 is exact, so the shortest-round-trip f64
        // rendering recovers the original f32 on the way back.
        f64::from(*self).to_value()
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(Error::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::new(format!("expected null, found {}", other.kind()))),
        }
    }
}

// --- reference & smart-pointer impls ------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! pointer_impls {
    ($($p:ident),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $p<T> {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<T: Deserialize> Deserialize for $p<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                T::from_value(v).map($p::new)
            }
        }
    )*};
}
pointer_impls!(Box, Rc, Arc);

// --- container impls -----------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.element($idx)?)?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    Ok((
                        K::from_value(pair.element(0)?)?,
                        V::from_value(pair.element(1)?)?,
                    ))
                })
                .collect(),
            other => Err(Error::new(format!(
                "expected sequence of pairs, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

// A `Value` serializes to itself, so pre-assembled value trees can be fed
// straight to `serde_json`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}
impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(T::from_value(v.field("start")?)?..T::from_value(v.field("end")?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
        let f = 0.1f32;
        assert_eq!(f32::from_value(&f.to_value()).unwrap(), f);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let back = Vec::<(u32, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        let arc = Arc::new(5u64);
        assert_eq!(*Arc::<u64>::from_value(&arc.to_value()).unwrap(), 5);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(Value::Null.field("f").is_err());
        assert!(Value::Seq(vec![]).element(0).is_err());
    }
}
