//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the small API subset it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator behind
//! [`rngs::StdRng`] is xoshiro256** seeded through splitmix64 — fast,
//! high-quality and fully deterministic per seed, which is all the
//! reproduction's experiments require. Streams are *not* bit-compatible
//! with upstream `rand`; nothing in this workspace depends on that.

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-width bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the bias over a u64 draw
                // is ≤ 2^-64 per unit of span, irrelevant at these sizes.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of an inferred type (`rng.gen::<f32>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in a range (`rng.gen_range(0..10)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// A small, fast generator; here an alias for [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Up to `amount` distinct elements, in shuffled order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let span = self.len() as u128;
                let i = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount);
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn slice_ops() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut shuffled = items;
        shuffled.shuffle(&mut rng);
        let mut sorted = shuffled;
        sorted.sort_unstable();
        assert_eq!(sorted, items);
        let picked: Vec<&i32> = items.choose_multiple(&mut rng, 3).collect();
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn dyn_rngcore_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynref: &mut dyn super::RngCore = &mut rng;
        let v = dynref.gen_range(0..10);
        assert!(v < 10);
    }
}
