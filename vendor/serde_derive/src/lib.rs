//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored serde stub's value-based `Serialize` /
//! `Deserialize` traits without `syn`/`quote`: the input item is parsed
//! with a small hand-rolled walk over [`proc_macro::TokenTree`]s, and the
//! impls are emitted by string formatting. Supported shapes are exactly
//! what this workspace uses: non-generic named structs, tuple structs,
//! and enums with unit / tuple / struct variants, plus the
//! `#[serde(skip)]` field attribute (skipped fields are omitted on
//! serialize and `Default`-filled on deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String, // field name, or tuple index rendered as a string
    skip: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
        tuple: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("literal compile_error expansion parses")
        }
    };
    let code = match (&item, dir) {
        (
            Item::Struct {
                name,
                fields,
                tuple,
            },
            Direction::Serialize,
        ) => gen_struct_ser(name, fields, *tuple),
        (
            Item::Struct {
                name,
                fields,
                tuple,
            },
            Direction::Deserialize,
        ) => gen_struct_de(name, fields, *tuple),
        (Item::Enum { name, variants }, Direction::Serialize) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Direction::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().expect("generated impl parses")
}

// --- token-level parsing -------------------------------------------------

/// Consumes leading outer attributes (`#[...]`), returning whether any of
/// them was `#[serde(skip)]`-like.
fn eat_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(attr) = &tokens[pos + 1] else {
            break;
        };
        if attr.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_serde_skip(attr.stream());
        pos += 2;
    }
    (pos, skip)
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string().starts_with("skip"))),
        _ => false,
    }
}

/// Consumes a visibility modifier (`pub`, `pub(crate)`, ...).
fn eat_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(
            &tokens.get(pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            pos += 1;
        }
    }
    pos
}

/// Splits a field/variant list group on top-level commas. Commas inside
/// nested groups are inside their own `TokenTree::Group`, but generic
/// arguments (`HashMap<String, PropId>`) are flat punct tokens, so angle
/// bracket depth has to be tracked explicitly.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tree);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    split_commas(group)
        .into_iter()
        .map(|tokens| {
            let (pos, skip) = eat_attrs(&tokens, 0);
            let pos = eat_vis(&tokens, pos);
            match tokens.get(pos) {
                Some(TokenTree::Ident(name)) => Ok(Field {
                    name: name.to_string(),
                    skip,
                }),
                _ => Err("serde stub derive: expected field name".to_owned()),
            }
        })
        .collect()
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    split_commas(group)
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| {
            let (_, skip) = eat_attrs(&tokens, 0);
            Field {
                name: i.to_string(),
                skip,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pos, _) = eat_attrs(&tokens, 0);
    let pos = eat_vis(&tokens, pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".to_owned()),
    };
    let name = match tokens.get(pos + 1) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("serde stub derive: expected item name".to_owned()),
    };
    let mut pos = pos + 2;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => {
            // Named `{...}`, tuple `(...)` `;`, or unit `;`.
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Item::Struct {
                        name,
                        fields: parse_named_fields(g.stream())?,
                        tuple: false,
                    })
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Ok(Item::Struct {
                        name,
                        fields: parse_tuple_fields(g.stream()),
                        tuple: true,
                    })
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                    name,
                    fields: Vec::new(),
                    tuple: false,
                }),
                _ => Err(format!("serde stub derive: malformed struct `{name}`")),
            }
        }
        "enum" => {
            let body = loop {
                match tokens.get(pos) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        break g.stream()
                    }
                    Some(_) => pos += 1,
                    None => return Err(format!("serde stub derive: malformed enum `{name}`")),
                }
            };
            let variants = split_commas(body)
                .into_iter()
                .map(|tokens| {
                    let (pos, _) = eat_attrs(&tokens, 0);
                    let vname = match tokens.get(pos) {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        _ => return Err("serde stub derive: expected variant name".to_owned()),
                    };
                    let shape = match tokens.get(pos + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            VariantShape::Tuple(split_commas(g.stream()).len())
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantShape::Struct(parse_named_fields(g.stream())?)
                        }
                        _ => VariantShape::Unit,
                    };
                    Ok(Variant { name: vname, shape })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!(
            "serde stub derive: unsupported item kind `{other}`"
        )),
    }
}

// --- code generation -----------------------------------------------------

fn gen_struct_ser(name: &str, fields: &[Field], tuple: bool) -> String {
    let body = if tuple {
        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
        match live.as_slice() {
            // Newtype structs serialize transparently, like serde.
            [only] if fields.len() == 1 => {
                format!("serde::Serialize::to_value(&self.{})", only.name)
            }
            _ => {
                let items: Vec<String> = live
                    .iter()
                    .map(|f| format!("serde::Serialize::to_value(&self.{})", f.name))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
    } else {
        let entries: Vec<String> = fields
            .iter()
            .filter(|f| !f.skip)
            .map(|f| {
                format!(
                    "({:?}.to_string(), serde::Serialize::to_value(&self.{}))",
                    f.name, f.name
                )
            })
            .collect();
        format!("serde::Value::Map(vec![{}])", entries.join(", "))
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &[Field], tuple: bool) -> String {
    let body = if tuple {
        let mut args = Vec::new();
        let live: Vec<usize> = fields
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.skip)
            .map(|(i, _)| i)
            .collect();
        let newtype = fields.len() == 1 && live.len() == 1;
        let mut live_idx = 0usize;
        for field in fields {
            if field.skip {
                args.push("::core::default::Default::default()".to_owned());
            } else if newtype {
                args.push("serde::Deserialize::from_value(v)?".to_owned());
            } else {
                args.push(format!(
                    "serde::Deserialize::from_value(v.element({live_idx})?)?"
                ));
                live_idx += 1;
            }
        }
        format!("::core::result::Result::Ok({name}({}))", args.join(", "))
    } else {
        let inits: Vec<String> = fields
            .iter()
            .map(|f| {
                if f.skip {
                    format!("{}: ::core::default::Default::default()", f.name)
                } else {
                    format!(
                        "{}: serde::Deserialize::from_value(v.field({:?})?)?",
                        f.name, f.name
                    )
                }
            })
            .collect();
        format!(
            "::core::result::Result::Ok({name} {{ {} }})",
            inits.join(", ")
        )
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) \
              -> ::core::result::Result<Self, serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                let _ = writeln!(
                    arms,
                    "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
                );
            }
            VariantShape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let payload = if *n == 1 {
                    "serde::Serialize::to_value(f0)".to_owned()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                };
                let _ = writeln!(
                    arms,
                    "{name}::{vname}({}) => serde::Value::Map(vec![({vname:?}.to_string(), {payload})]),",
                    binders.join(", ")
                );
            }
            VariantShape::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), serde::Serialize::to_value({}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                let _ = writeln!(
                    arms,
                    "{name}::{vname} {{ {} }} => serde::Value::Map(vec![({vname:?}.to_string(), \
                     serde::Value::Map(vec![{}]))]),",
                    binders.join(", "),
                    entries.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                let _ = writeln!(
                    unit_arms,
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname}),"
                );
            }
            VariantShape::Tuple(n) => {
                let args: Vec<String> = if *n == 1 {
                    vec!["serde::Deserialize::from_value(payload)?".to_owned()]
                } else {
                    (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(payload.element({i})?)?"))
                        .collect()
                };
                let _ = writeln!(
                    tagged_arms,
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname}({})),",
                    args.join(", ")
                );
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::core::default::Default::default()", f.name)
                        } else {
                            format!(
                                "{}: serde::Deserialize::from_value(payload.field({:?})?)?",
                                f.name, f.name
                            )
                        }
                    })
                    .collect();
                let _ = writeln!(
                    tagged_arms,
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname} {{ {} }}),",
                    inits.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) \
              -> ::core::result::Result<Self, serde::Error> {{\n\
                 match v {{\n\
                     serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::core::result::Result::Err(serde::Error::new(format!(\n\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     other => {{\n\
                         let (tag, payload) = other.enum_entry()?;\n\
                         let _ = payload;\n\
                         match tag {{\n\
                             {tagged_arms}\n\
                             other => ::core::result::Result::Err(serde::Error::new(format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
             }}\n\
         }}"
    )
}
