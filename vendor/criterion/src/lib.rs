//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` / `criterion_group!` /
//! `criterion_main!` surface with a simple wall-clock timing loop: each
//! benchmark is warmed up briefly, then timed for a fixed number of
//! iterations, and the mean time per iteration is printed. No statistics,
//! plots, or baselines.

use std::time::{Duration, Instant};

/// How setup output is batched in [`Bencher::iter_batched`]; accepted for
/// API compatibility, batching is always one setup per measured call here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed over by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Entry point mirroring criterion's driver.
pub struct Criterion {
    measure_iters: u64,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_iters: 30,
            warmup_iters: 3,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut warm = Bencher {
            iters: self.warmup_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut bench = Bencher {
            iters: self.measure_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        let per_iter = bench.elapsed.as_secs_f64() / bench.iters.max(1) as f64;
        println!("{id:<40} {:>12.3} µs/iter", per_iter * 1e6);
        self
    }

    /// Accepted for compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
