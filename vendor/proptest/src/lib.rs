//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as plain
//! random sampling (no shrinking): `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `Just`, `any::<T>()`, integer and float range
//! strategies, tuple strategies, `collection::vec`, simple regex string
//! strategies, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros. Case generation is
//! deterministic per test name so failures are reproducible.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert!`-style failure: the property is false.
        Fail(String),
        /// A `prop_assume!` rejection: the case does not apply.
        Reject(String),
    }

    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seed deterministically from a test's name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform integer in `[0, n)` via 128-bit multiply-shift; `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A source of random values of one type. Unlike real proptest there is
    /// no shrinking: a strategy is just a sampler.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy by stacking `depth` applications of
        /// `grow` on top of this leaf strategy. `size` and `branch` are
        /// accepted for API compatibility but unused (depth already bounds
        /// the tree).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            grow: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = grow(level.clone()).boxed();
            }
            level
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    // -- primitive `any::<T>()` support -----------------------------------

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryPrim {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_prim_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    arb_prim_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_prim_int {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    arb_prim_int!(i8, i16, i32, i64, isize);

    impl ArbitraryPrim for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryPrim for f32 {
        fn generate(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    impl ArbitraryPrim for f64 {
        fn generate(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    // -- integer and float ranges -----------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*}
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64();
                    self.start + (self.end - self.start) * unit as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Scale by [0, 1] so the upper endpoint is reachable.
                    let unit = (rng.next_u64() >> 11) as f64
                        / ((1u64 << 53) - 1) as f64;
                    lo + (hi - lo) * unit as $t
                }
            }
        )*}
    }
    float_range_strategy!(f32, f64);

    // -- tuples ------------------------------------------------------------

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*}
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // -- regex-ish string strategies ---------------------------------------

    /// One unit of a simplified regex: a generator plus a repetition range.
    #[derive(Debug, Clone)]
    enum RegexAtom {
        /// `.` — any char except newline.
        AnyChar,
        /// `[...]` — one of an explicit char set.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    #[derive(Debug, Clone)]
    struct RegexPart {
        atom: RegexAtom,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            match chars.next() {
                None => panic!("unterminated character class in regex strategy"),
                Some(']') => break,
                Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                    let lo = prev.take().expect("checked");
                    let hi = chars.next().expect("checked");
                    for c in lo..=hi {
                        set.push(c);
                    }
                }
                Some(c) => {
                    if let Some(p) = prev.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            set.push(p);
        }
        assert!(!set.is_empty(), "empty character class in regex strategy");
        set
    }

    /// Parse the simplified regex dialect used by this workspace's tests:
    /// a sequence of `.`/`[class]`/literal atoms, each optionally followed
    /// by `{m,n}`, `{n}`, `*`, `+`, or `?`.
    fn parse_regex(pattern: &str) -> Vec<RegexPart> {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => RegexAtom::AnyChar,
                '[' => RegexAtom::Class(parse_class(&mut chars)),
                '\\' => {
                    RegexAtom::Literal(chars.next().expect("dangling escape in regex strategy"))
                }
                other => RegexAtom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        body.push(c);
                    }
                    if let Some((lo, hi)) = body.split_once(',') {
                        (
                            lo.trim().parse().expect("bad repeat lower bound"),
                            hi.trim().parse().expect("bad repeat upper bound"),
                        )
                    } else {
                        let n = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            parts.push(RegexPart { atom, min, max });
        }
        parts
    }

    /// Characters `.` draws from: mostly printable ASCII with a sprinkle of
    /// multi-byte codepoints to exercise UTF-8 handling.
    const EXOTIC: &[char] = &['é', 'π', '–', '☂', '汉', '🚗'];

    fn sample_any_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            0 => EXOTIC[rng.below(EXOTIC.len() as u64) as usize],
            1..=3 => ' ',
            _ => {
                // Printable ASCII 0x20..0x7f.
                char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
            }
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let parts = parse_regex(self);
            let mut out = String::new();
            for part in &parts {
                let span = (part.max - part.min + 1) as u64;
                let count = part.min + rng.below(span) as u32;
                for _ in 0..count {
                    match &part.atom {
                        RegexAtom::AnyChar => out.push(sample_any_char(rng)),
                        RegexAtom::Class(set) => {
                            out.push(set[rng.below(set.len() as u64) as usize])
                        }
                        RegexAtom::Literal(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`]; converts from ranges and fixed sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<T>` with a random length in the given bounds.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `lhs == rhs`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {:?} != {:?}: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `lhs != rhs`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
}

/// Skip the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(
                        module_path!(), "::", stringify!($name)
                    ));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(64) {
                        panic!(
                            "proptest '{}': too many rejected cases ({} passed of {})",
                            stringify!($name), passed, config.cases
                        );
                    }
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest '{}' failed: {}", stringify!($name), msg),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let g = Strategy::sample(&(0.0f32..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-z ]{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = Strategy::sample(&".{0,120}", &mut rng);
            assert!(t.chars().count() <= 120);
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = prop_oneof![Just(Tree::Leaf(0)), (1u32..5).prop_map(Tree::Leaf)];
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::deterministic("trees");
        let mut max_depth = 0;
        for _ in 0..50 {
            let t = strat.sample(&mut rng);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth <= 3);
        assert!(max_depth >= 1, "recursion should produce non-leaf trees");
    }

    mod macro_surface {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Vec strategies honor their length bounds.
            #[test]
            fn vec_lengths(xs in crate::collection::vec(0u8..8, 2..6)) {
                prop_assert!(xs.len() >= 2 && xs.len() < 6);
                for &x in &xs {
                    prop_assert!(x < 8, "element {} out of range", x);
                }
            }

            /// prop_assume rejections are skipped, not failed.
            #[test]
            fn assume_skips(a in any::<u32>(), b in any::<u32>()) {
                prop_assume!(a != b);
                prop_assert_ne!(a, b);
                prop_assert_eq!(a.max(b), b.max(a), "max is symmetric");
            }
        }
    }
}
