//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde stub's [`serde::Value`] data model as JSON text
//! and parses JSON text back into it. Supports exactly the surface this
//! workspace uses: `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! and `from_reader`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// Error raised while rendering or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io: {e}"))
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a trailing ".0" so the value round-trips as a float.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => render_f64(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs: only handle the BMP + paired case.
                            if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::new("truncated surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error::new("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::new("bad surrogate"))?;
                                    self.pos += 6;
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::new("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad codepoint"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad int '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad uint '{text}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| Error::new("unexpected end"))? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("expected 'null'"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("expected 'true'"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("expected 'false'"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected ',' or '}'")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parse a JSON document into the raw [`Value`] data model.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserialize a value of type `T` from a reader producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let s: String = from_str(&to_string("hi \"there\"\n").unwrap()).unwrap();
        assert_eq!(s, "hi \"there\"\n");
        let f: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(f, 1.5);
        let whole: f64 = from_str(&to_string(&2.0f64).unwrap()).unwrap();
        assert_eq!(whole, 2.0);
    }

    #[test]
    fn round_trip_containers() {
        let xs = vec![1u32, 2, 3];
        let back: Vec<u32> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
        let opt: Option<String> = from_str(&to_string(&None::<String>).unwrap()).unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn pretty_parses_back() {
        let xs = vec![(1u8, "a".to_string()), (2, "b".to_string())];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u8, String)> = from_str(&pretty).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }
}
